"""Chaos integration: random crash points across many seeds must never
lose committed work in either Tandem generation."""

import pytest

from repro.errors import TransactionAborted
from repro.tandem import DPMode, TandemConfig, TandemSystem


def run_chaos(mode, seed, txns=12):
    system = TandemSystem(TandemConfig(mode=mode, num_dps=2), seed=seed)
    client = system.client()
    rng = system.sim.rng.stream("chaos")
    committed = []
    aborted = []

    def workload():
        for t in range(txns):
            txn = client.begin()
            pair = f"dp{t % 2}"
            try:
                yield from client.write(txn, pair, f"k{t}", t)
                if rng.random() < 0.3:
                    system.crash_primary(pair)
                    system.pair(pair).reintegrate()
                yield from client.write(txn, pair, f"k{t}-b", t)
                yield from client.commit(txn)
            except TransactionAborted:
                aborted.append(txn.id)
                continue
            committed.append((txn.id, pair, f"k{t}"))

    system.sim.run_process(workload())
    return system, client, committed, aborted


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("mode", [DPMode.DP1, DPMode.DP2], ids=["dp1", "dp2"])
def test_committed_work_survives_chaos(mode, seed):
    system, client, committed, aborted = run_chaos(mode, seed)

    def verify():
        reader = client.begin()
        lost = []
        for txn_id, pair, key in committed:
            value = yield from client.read(reader, pair, key)
            if value is None:
                lost.append((txn_id, key))
        return lost

    assert system.sim.run_process(verify()) == []
    assert system.committed_durable()
    if mode is DPMode.DP1:
        # DP1 takeovers are transparent: nothing aborts because of them.
        assert aborted == []


@pytest.mark.parametrize("seed", range(3))
def test_dp2_chaos_aborts_match_registry(seed):
    system, _client, committed, aborted = run_chaos(DPMode.DP2, seed)
    counts = system.registry.counts()
    assert counts["committed"] >= len(committed)
    assert counts["aborted"] >= len(aborted)
    # Every client-visible abort is a registry abort (no silent limbo).
    from repro.tandem import TxnStatus

    for txn_id in aborted:
        assert system.registry.status(txn_id) is TxnStatus.ABORTED
