"""Membership-divergence scenario: gossiped liveness views pushed apart
by partitions, lossy links, and a crash — and the three claims that must
survive it: views reconverge after the heal, a refuted suspicion never
sticks, and no acked write is lost while the views disagreed."""

import pytest

from repro.chaos.membership_divergence import MembershipDivergenceScenario
from repro.chaos.plan import ChaosPlan
from repro.chaos.runner import ChaosRunner, _build_scenario
from repro.errors import SimulationError

# The smoke-gate shape: short horizon, quick gossip, tight suspicion.
SHORT = dict(num_nodes=5, horizon=10.0, gossip_period=0.25,
             suspicion_timeout=1.0)


def run_divergence(seed, plan=None, **kwargs):
    params = dict(SHORT)
    params.update(kwargs)
    scenario = MembershipDivergenceScenario(**params)
    report = scenario.run(
        seed, plan if plan is not None else scenario.spec().sample(seed)
    )
    return scenario, report


# ----------------------------------------------------------------------
# The invariants hold under sampled chaos


def test_sampled_plan_is_clean_and_views_reconverge():
    _scenario, report = run_divergence(seed=0)
    assert report.violations == ()
    # The scenario actually ran traffic and rumors, not a vacuous pass.
    assert report.counters["chaos.mship.acked_puts"] > 0
    assert report.counters["membership.rounds"] > 0


def test_sweep_stays_clean_across_seeds():
    scenario = MembershipDivergenceScenario(**SHORT)
    result = ChaosRunner(scenario).sweep(range(5))
    assert not result.failures, (
        [c.violation for c in result.failures]
    )


def test_chaos_actually_diverges_the_views_somewhere():
    """Across a handful of seeds, at least one plan must push the views
    apart (divergent sampler ticks) and mint suspicions — otherwise the
    invariants above are passing on an untested claim."""
    divergent_ticks = 0.0
    suspicions = 0.0
    for seed in range(5):
        _scenario, report = run_divergence(seed)
        divergent_ticks += report.counters.get("chaos.mship.divergent_ticks", 0)
        suspicions += report.counters.get("membership.changes", 0)
    assert divergent_ticks > 0
    assert suspicions > 0


def test_refutations_clear_in_flight_accusations():
    """Some seed's plan partitions long enough to suspect a live node;
    the quiesce check then proves the refutation won everywhere."""
    refutations = 0.0
    for seed in range(5):
        _scenario, report = run_divergence(seed)
        assert report.violations == ()
        refutations += report.counters.get("membership.refutations", 0)
    assert refutations > 0


# ----------------------------------------------------------------------
# Determinism: same seed, same story, bit for bit


def test_seed_identical_runs_are_bit_identical():
    _s1, one = run_divergence(seed=3)
    _s2, two = run_divergence(seed=3)
    assert one.counters == two.counters
    assert one.end_time == two.end_time
    assert one.violations == two.violations


def test_different_seeds_tell_different_stories():
    _s1, one = run_divergence(seed=0)
    _s2, two = run_divergence(seed=1)
    assert one.counters != two.counters


def test_calm_run_converges_trivially():
    _scenario, report = run_divergence(seed=0, plan=ChaosPlan())
    assert report.violations == ()
    assert report.counters.get("chaos.mship.divergent_ticks", 0) == 0


# ----------------------------------------------------------------------
# Registration and validation


def test_registered_with_the_runner():
    scenario = _build_scenario("membership-divergence", policy=None)
    assert isinstance(scenario, MembershipDivergenceScenario)


def test_unknown_policy_is_rejected():
    with pytest.raises(SimulationError):
        MembershipDivergenceScenario(policy="oracle")


def test_too_few_nodes_rejected():
    with pytest.raises(SimulationError):
        MembershipDivergenceScenario(num_nodes=3)


# ----------------------------------------------------------------------
# The E19 claim (CI chaos-smoke runs this under -m slow)


@pytest.mark.slow
def test_e19_claim_dissemination_and_flapping():
    """The full sweep: dissemination latency ∝ log(n)·period (shrinking
    with fanout), fast flapping under-convicts, slow flapping convicts
    and is always refuted."""
    from benchmarks.bench_e19_gossip_membership import check_claims, run_sweep

    dis_rows, flap = run_sweep()
    check_claims(dis_rows, flap)


@pytest.mark.slow
def test_full_scale_sweep_is_clean():
    scenario = MembershipDivergenceScenario()
    result = ChaosRunner(scenario).sweep(range(8))
    assert not result.failures, (
        [c.violation for c in result.failures]
    )
