"""The geo game day: seed determinism, serial==parallel sweeps, shrink
convergence on the compound plan, and the fenced-vs-unfenced claim at
full multi-DC scale."""

import pytest

from repro.chaos.game_day import GameDayScenario, GameDaySpec
from repro.chaos.plan import DiskFaultEpisode, LinkFaultEpisode, WanCutEpisode
from repro.chaos.runner import ChaosRunner
from repro.errors import SimulationError


def small(policy="fenced", detector="phi", **kw):
    """A 12-node day for the fast tests; full scale runs once below."""
    return GameDayScenario(
        policy=policy, detector=detector, nodes_per_site=4, **kw
    )


def render(sim):
    return "\n".join(repr(r) for r in sim.trace.records)


def test_spec_includes_compound_timeline():
    scenario = small()
    plan = scenario.spec().sample(0)
    kinds = {type(e) for e in plan.episodes}
    assert WanCutEpisode in kinds
    assert LinkFaultEpisode in kinds
    assert DiskFaultEpisode in kinds
    # The scripted WAN cut severs exactly the log-shipping pair's sites.
    cut = next(e for e in plan.episodes if isinstance(e, WanCutEpisode))
    assert {cut.site_a, cut.site_b} == {"dc-east", "dc-west"}


def test_same_seed_bit_identical_trace_and_metrics():
    plan = small().spec().sample(5)
    first = small()
    second = small()
    r1 = first.run(5, plan)
    r2 = second.run(5, plan)
    assert r1.counters == r2.counters
    assert r1.violations == r2.violations
    assert r1.end_time == r2.end_time
    assert render(first._sim) == render(second._sim)


def test_serial_sweep_matches_multiprocessing_sweep():
    seeds = range(3)
    serial = ChaosRunner(small(policy="unfenced")).sweep(
        seeds, shrink=False, processes=1
    )
    parallel = ChaosRunner(small(policy="unfenced")).sweep(
        seeds, shrink=False, processes=3
    )
    assert serial.reports == parallel.reports


def test_fenced_phi_sweep_is_clean():
    result = ChaosRunner(small()).sweep(range(3), shrink=False)
    assert not result.failures
    for report in result.reports:
        assert report.violations == ()


def test_unfenced_loses_post_takeover_writes():
    scenario = small(policy="unfenced")
    report = scenario.run(0, scenario.spec().sample(0))
    assert [v.invariant for v in report.violations] == ["no-lost-update"]
    assert scenario.lost_updates > 0
    # The fenced twin on the same plan survives, bouncing the stale tail.
    fenced = small(policy="fenced")
    clean = fenced.run(0, fenced.spec().sample(0))
    assert clean.violations == ()
    assert clean.counters.get("logship.stale_epoch_rejected", 0) > 0


def test_shrinking_converges_on_compound_plan():
    scenario = small(policy="unfenced")
    result = ChaosRunner(scenario).sweep([0], shrink=True)
    assert len(result.failures) == 1
    case = result.failures[0]
    assert case.replay_matches
    assert len(case.minimal_plan) <= len(case.plan)
    # The WAN cut is the story: shrinking may drop satellites and narrow
    # windows, but the cut that manufactures the split brain survives.
    assert any(
        isinstance(e, WanCutEpisode) for e in case.minimal_plan.episodes
    )


def test_detection_latency_orders_fixed_after_phi():
    phi = small(detector="phi")
    phi.run(0, phi.spec().sample(0))
    fixed = small(detector="fixed")
    fixed.run(0, fixed.spec().sample(0))
    assert phi.detection_latency is not None
    assert fixed.detection_latency is not None
    assert phi.detection_latency < fixed.detection_latency


@pytest.mark.slow
def test_full_scale_game_day():
    """The acceptance run: 100+ processes across three sites, three fault
    engines at once, zero violations and zero lost acked writes under
    fenced + phi-accrual."""
    scenario = GameDayScenario(policy="fenced", detector="phi")
    plan = scenario.spec().sample(0)
    overlapping = [
        e for e in plan.episodes
        if e.__class__ in (WanCutEpisode, LinkFaultEpisode)
        or isinstance(e, DiskFaultEpisode)
    ]
    assert len({type(e) for e in overlapping}) >= 3
    report = scenario.run(0, plan)
    assert scenario.endpoint_count >= 100
    assert len(scenario.SITES) >= 2
    assert report.violations == ()
    assert scenario.lost_acked_writes == 0
    assert scenario.lost_updates == 0
    assert scenario.converged_at is not None
    assert report.counters.get("chaos.gameday.acked_puts", 0) > 0
    assert report.counters.get("net.wan_msgs", 0) > 0


def test_bad_params_rejected():
    with pytest.raises(SimulationError):
        GameDayScenario(policy="hope")
    with pytest.raises(SimulationError):
        GameDayScenario(detector="oracle")
    with pytest.raises(SimulationError):
        GameDayScenario(nodes_per_site=1)
    with pytest.raises(SimulationError):
        GameDayScenario(cut_start=20.0, cut_end=10.0)


def test_spec_is_picklable_and_seed_pure():
    import pickle

    spec = small().spec()
    clone = pickle.loads(pickle.dumps(spec))
    assert isinstance(clone, GameDaySpec)
    assert clone.sample(7).to_dict() == spec.sample(7).to_dict()
