"""ChaosEngine: lowering a plan onto the simulator's injectors."""

import pytest

from repro.chaos.engine import ChaosEngine, ChaosTargets
from repro.chaos.plan import (
    ChaosPlan,
    CrashEpisode,
    DiskFaultEpisode,
    LinkFaultEpisode,
    PartitionEpisode,
)
from repro.errors import SimulationError
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.storage.disk import Disk


class FakeNode:
    """Idempotent crash/restart target, like the scenario adapters."""

    def __init__(self):
        self.up = True
        self.events = []

    def crash(self, cause="injected"):
        if not self.up:
            return
        self.up = False
        self.events.append(("crash", cause))

    def restart(self):
        if self.up:
            return
        self.up = True
        self.events.append(("restart", None))


def make_world(num_nodes=2, with_disk=False):
    sim = Simulator(seed=1)
    network = Network(sim)
    for i in range(num_nodes):
        network.attach(f"n{i}")
    nodes = {f"n{i}": FakeNode() for i in range(num_nodes)}
    disks = {"d0": Disk(sim, name="d0")} if with_disk else {}
    targets = ChaosTargets(sim, network=network, nodes=nodes, disks=disks)
    return sim, network, nodes, disks, targets


def test_crash_episodes_drive_node_lifecycle():
    sim, _net, nodes, _disks, targets = make_world()
    engine = ChaosEngine(targets)
    engine.install(ChaosPlan((CrashEpisode("n0", 1.0, 3.0),)))
    sim.run(until=2.0)
    assert not nodes["n0"].up
    sim.run(until=4.0)
    assert nodes["n0"].up
    assert nodes["n0"].events == [("crash", "injected"), ("restart", None)]


def test_partition_episode_partitions_then_heals():
    sim, network, _nodes, _disks, targets = make_world()
    engine = ChaosEngine(targets)
    engine.install(
        ChaosPlan((PartitionEpisode(1.0, 3.0, (("n0",), ("n1",))),))
    )
    sim.run(until=2.0)
    assert not network.reachable("n0", "n1")
    sim.run(until=4.0)
    assert network.reachable("n0", "n1")


def test_link_fault_episode_injects_then_clears():
    sim, network, _nodes, _disks, targets = make_world()
    engine = ChaosEngine(targets)
    engine.install(ChaosPlan((LinkFaultEpisode(1.0, 3.0, loss=0.5),)))
    assert not network.active_faults
    sim.run(until=2.0)
    assert len(network.active_faults) == 1
    sim.run(until=4.0)
    assert not network.active_faults


def test_disk_fault_episode_hard_fail_and_repair():
    sim, _net, _nodes, disks, targets = make_world(with_disk=True)
    engine = ChaosEngine(targets)
    engine.install(ChaosPlan((DiskFaultEpisode("d0", 1.0, 3.0),)))
    sim.run(until=2.0)
    assert disks["d0"].failed
    sim.run(until=4.0)
    assert not disks["d0"].failed


def test_disk_fault_episode_slowdown():
    sim, _net, _nodes, disks, targets = make_world(with_disk=True)
    engine = ChaosEngine(targets)
    engine.install(
        ChaosPlan((DiskFaultEpisode("d0", 1.0, 3.0, slow_factor=4.0),))
    )
    sim.run(until=2.0)
    assert disks["d0"].slow_factor == 4.0
    sim.run(until=4.0)
    assert disks["d0"].slow_factor == 1.0


def test_engine_validates_unknown_targets():
    sim, _net, _nodes, _disks, targets = make_world()
    engine = ChaosEngine(targets)
    with pytest.raises(SimulationError):
        engine.install(ChaosPlan((CrashEpisode("ghost", 1.0),)))
    with pytest.raises(SimulationError):
        engine.install(ChaosPlan((DiskFaultEpisode("ghost", 1.0),)))


def test_engine_requires_network_for_partitions():
    sim = Simulator(seed=1)
    engine = ChaosEngine(ChaosTargets(sim, nodes={"n0": FakeNode()}))
    with pytest.raises(SimulationError):
        engine.install(
            ChaosPlan((PartitionEpisode(1.0, 2.0, (("n0",), ("n1",))),))
        )


def test_engine_installs_only_once():
    sim, _net, _nodes, _disks, targets = make_world()
    engine = ChaosEngine(targets)
    engine.install(ChaosPlan())
    with pytest.raises(SimulationError):
        engine.install(ChaosPlan())


def test_restore_undoes_everything():
    sim, network, nodes, disks, targets = make_world(with_disk=True)
    engine = ChaosEngine(targets)
    engine.install(ChaosPlan((
        CrashEpisode("n0", 1.0),  # stays down
        PartitionEpisode(1.0, 9.0, (("n0",), ("n1",))),
        LinkFaultEpisode(1.0, 9.0, loss=0.9),
        DiskFaultEpisode("d0", 1.0),  # stays broken
    )))
    sim.run(until=5.0)
    assert not nodes["n0"].up
    assert not network.reachable("n0", "n1")
    assert network.active_faults
    assert disks["d0"].failed

    engine.restore()
    assert nodes["n0"].up
    assert network.reachable("n0", "n1")
    assert not network.active_faults
    assert not disks["d0"].failed


def test_restore_is_idempotent_on_healthy_world():
    sim, _net, nodes, _disks, targets = make_world()
    engine = ChaosEngine(targets)
    engine.install(ChaosPlan())
    sim.run(until=1.0)
    engine.restore()
    engine.restore()
    assert all(node.up for node in nodes.values())
    # restart was never called on nodes that did not crash
    assert all(node.events == [] for node in nodes.values())
