"""ChaosPlan and ChaosSpec: validation, views, persistence, sampling."""

import pytest

from repro.chaos.plan import (
    ChaosPlan,
    ChaosSpec,
    CrashEpisode,
    DiskFaultEpisode,
    LinkFaultEpisode,
    PartitionEpisode,
)
from repro.errors import SimulationError


def sample_plan():
    return ChaosPlan((
        CrashEpisode("n1", 2.0, 5.0),
        PartitionEpisode(3.0, 6.0, (("n1",), ("n2", "n3"))),
        LinkFaultEpisode(1.0, 4.0, loss=0.2),
        DiskFaultEpisode("d0", 2.5, 7.0, slow_factor=3.0),
    ))


# ----------------------------------------------------------------------
# Episode validation


def test_crash_restart_must_follow_crash():
    with pytest.raises(SimulationError):
        CrashEpisode("n1", 5.0, back_at=5.0)


def test_partition_window_must_be_nonempty():
    with pytest.raises(SimulationError):
        PartitionEpisode(4.0, 4.0, (("a",), ("b",)))


def test_partition_needs_groups():
    with pytest.raises(SimulationError):
        PartitionEpisode(1.0, 2.0, ())


def test_link_fault_must_do_something():
    with pytest.raises(SimulationError):
        LinkFaultEpisode(0.0, 1.0)


def test_link_fault_probability_bounds():
    with pytest.raises(SimulationError):
        LinkFaultEpisode(0.0, 1.0, loss=1.5)


def test_disk_slow_factor_below_one_rejected():
    with pytest.raises(SimulationError):
        DiskFaultEpisode("d0", 1.0, slow_factor=0.5)


# ----------------------------------------------------------------------
# Plan-level behaviour


def test_plan_rejects_overlapping_partitions():
    with pytest.raises(SimulationError):
        ChaosPlan((
            PartitionEpisode(1.0, 5.0, (("a",), ("b",))),
            PartitionEpisode(4.0, 8.0, (("a",), ("b",))),
        ))


def test_plan_allows_boundary_sharing_partitions():
    plan = ChaosPlan((
        PartitionEpisode(1.0, 5.0, (("a",), ("b",))),
        PartitionEpisode(5.0, 8.0, (("a", "b"), ("c",))),
    ))
    assert len(plan.partitions) == 2


def test_plan_views_split_by_kind():
    plan = sample_plan()
    assert len(plan.crashes) == 1
    assert len(plan.partitions) == 1
    assert len(plan.link_faults) == 1
    assert len(plan.disk_faults) == 1
    assert len(plan) == 4


def test_plan_horizon_is_latest_end():
    assert sample_plan().horizon == 7.0
    assert ChaosPlan().horizon == 0.0


def test_without_and_replace_episode():
    plan = sample_plan()
    smaller = plan.without(0)
    assert len(smaller) == 3 and not smaller.crashes
    narrowed = plan.replace_episode(1, PartitionEpisode(3.0, 4.0, (("n1",), ("n2",))))
    assert narrowed.partitions[0].end == 4.0
    # the original is untouched (plans are immutable values)
    assert plan.partitions[0].end == 6.0


def test_describe_mentions_every_episode():
    text = sample_plan().describe()
    assert "crash" in text and "partition" in text
    assert "link fault" in text and "disk" in text
    assert ChaosPlan().describe() == "(empty plan)"


def test_dict_roundtrip_preserves_plan():
    plan = sample_plan()
    assert ChaosPlan.from_dict(plan.to_dict()) == plan


def test_dict_roundtrip_empty_and_stays_down():
    plan = ChaosPlan((CrashEpisode("n1", 2.0),))
    data = plan.to_dict()
    assert "back_at" not in data["episodes"][0]
    assert ChaosPlan.from_dict(data) == plan


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(SimulationError):
        ChaosPlan.from_dict({"episodes": [{"kind": "meteor"}]})


# ----------------------------------------------------------------------
# Seeded sampling


def test_sample_is_pure_function_of_seed():
    spec = ChaosSpec(nodes=("a", "b", "c"), horizon=20.0)
    assert spec.sample(7) == spec.sample(7)
    assert any(spec.sample(i) != spec.sample(i + 100) for i in range(5))


def test_sample_respects_crash_bounds_and_horizon():
    spec = ChaosSpec(nodes=("a", "b", "c"), horizon=20.0,
                     min_crashes=1, max_crashes=2)
    for seed in range(20):
        plan = spec.sample(seed)
        assert 1 <= len(plan.crashes) <= 2
        assert plan.horizon <= 0.9 * spec.horizon + 1e-9
        for episode in plan.crashes:
            assert episode.node in spec.nodes


def test_spec_validates_bounds():
    with pytest.raises(SimulationError):
        ChaosSpec(nodes=())
    with pytest.raises(SimulationError):
        ChaosSpec(nodes=("a",), min_crashes=3, max_crashes=1)
    with pytest.raises(SimulationError):
        ChaosSpec(nodes=("a",), horizon=-1.0)
