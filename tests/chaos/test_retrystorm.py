"""Retry-storm scenario (E13): determinism, invariants, and the claim.

Fast tests pin the scenario's correctness properties: both disciplines
stay invariant-clean, runs are bit-identical under a shared seed, and a
sweep fans out over worker processes without changing a single byte of
any report. The ``slow``-marked test reproduces the experiment's claim
end to end (resilient in-window goodput >= 2x naive) and runs in CI's
chaos-smoke job.
"""

import pytest

from repro.chaos.plan import ChaosPlan
from repro.chaos.retrystorm import RetryStormScenario
from repro.chaos.runner import ChaosRunner


def run_storm(policy, seed, plan=None, **kwargs):
    scenario = RetryStormScenario(policy=policy, **kwargs)
    return scenario.run(seed, plan if plan is not None else ChaosPlan())


# ----------------------------------------------------------------------
# Invariants hold under both disciplines


def test_resilient_run_is_clean_and_productive():
    report = run_storm("resilient", seed=0)
    assert report.violations == ()
    counters = report.counters
    assert counters["chaos.retrystorm.ok"] > 0
    # The stack actually engaged: admission shed load, the degraded
    # hook answered from the stale guess, nobody re-minted identities.
    assert counters["resilience.admission.server.shed_busy"] > 0
    assert counters["chaos.retrystorm.ok_degraded"] > 0
    assert "chaos.retrystorm.reissues" not in counters


def test_naive_run_is_clean_but_stormy():
    report = run_storm("naive", seed=0)
    assert report.violations == ()          # a storm is not a correctness bug
    counters = report.counters
    assert counters["chaos.retrystorm.reissues"] > 0
    # Fresh uniquifiers defeat dedup: the server executes (much) more
    # work than the clients counted as successes.
    assert counters["chaos.retrystorm.executed"] > counters["chaos.retrystorm.ok"]


def test_invariants_hold_under_injected_faults():
    scenario = RetryStormScenario(policy="resilient")
    for seed in (3, 4):
        plan = scenario.spec().sample(seed)
        report = scenario.run(seed, plan)
        assert report.violations == (), (seed, report.violations)


# ----------------------------------------------------------------------
# Determinism


@pytest.mark.parametrize("policy", ["naive", "resilient"])
def test_same_seed_same_run(policy):
    first = run_storm(policy, seed=7)
    second = run_storm(policy, seed=7)
    assert first.counters == second.counters
    assert first.violations == second.violations
    assert first.end_time == second.end_time


def test_sweep_serial_vs_parallel_bit_identical():
    seeds = [0, 1, 2, 3]
    serial = ChaosRunner(RetryStormScenario(policy="resilient")).sweep(
        seeds, processes=1
    )
    fanned = ChaosRunner(RetryStormScenario(policy="resilient")).sweep(
        seeds, processes=2
    )
    assert serial.reports == fanned.reports
    assert serial.failures == fanned.failures


# ----------------------------------------------------------------------
# The E13 claim (CI chaos-smoke runs this under -m slow)


@pytest.mark.slow
def test_resilient_goodput_at_least_twice_naive():
    seeds = (0, 1, 2)
    naive = sum(
        run_storm("naive", seed).counters.get("chaos.retrystorm.ok_window", 0.0)
        for seed in seeds
    ) / len(seeds)
    resilient = sum(
        run_storm("resilient", seed).counters.get("chaos.retrystorm.ok_window", 0.0)
        for seed in seeds
    ) / len(seeds)
    assert resilient >= 2 * max(naive, 1.0)
