"""Split-brain scenario (E14): determinism, invariants, and the claim.

Fast tests pin the scenario's correctness properties: the fenced policy
stays invariant-clean under the partition, the unfenced ablation is
*caught* by the no-lost-update invariant, runs are bit-identical under a
shared seed, and sweeps fan out without changing a byte. The
``slow``-marked test reproduces the E14 claim shape end to end.
"""

import pytest

from repro.chaos.plan import ChaosPlan
from repro.chaos.runner import ChaosRunner
from repro.chaos.splitbrain import SplitBrainScenario


def run_split(policy, seed, plan=None, **kwargs):
    scenario = SplitBrainScenario(policy=policy, **kwargs)
    report = scenario.run(seed, plan if plan is not None else ChaosPlan())
    return scenario, report


# ----------------------------------------------------------------------
# The two policies under the partition


def test_fenced_run_is_clean():
    scenario, report = run_split("fenced", seed=0)
    assert report.violations == ()
    counters = report.counters
    # The partitioned-but-alive primary was wrongly convicted, promoted
    # around, and its resurrection bounced off the fence.
    assert counters["failover.auto_takeovers"] == 1
    assert counters["failover.false_convictions"] == 1
    assert counters["logship.stale_epoch_rejected"] > 0
    assert counters.get("chaos.splitbrain.lost_updates", 0.0) == 0
    assert scenario.detection_latency is not None
    assert scenario.detection_latency > 0


def test_unfenced_run_is_caught_by_the_invariant():
    scenario, report = run_split("unfenced", seed=0)
    assert report.violations != ()
    assert any(v.invariant == "no-lost-update" for v in report.violations)
    counters = report.counters
    assert counters["chaos.splitbrain.lost_updates"] > 0
    assert counters.get("logship.stale_epoch_rejected", 0.0) == 0


def test_stale_writer_keeps_getting_acks_from_the_deposed_primary():
    _scenario, report = run_split("fenced", seed=1)
    counters = report.counters
    # During the partition the deposed side acked writes it could never
    # ship — the §2 ambiguity made concrete.
    assert counters["chaos.splitbrain.stale_acks"] > 0
    assert counters["logship.in_doubt_commits"] > 0


def test_no_partition_means_no_takeover():
    scenario, report = run_split("fenced", seed=0, partition_start=None)
    assert report.violations == ()
    assert "failover.auto_takeovers" not in report.counters
    assert scenario.false_takeover is False


def test_epoch_monotonic_invariant_registered():
    _scenario, report = run_split("fenced", seed=2)
    assert report.violations == ()          # it held, under a real takeover


# ----------------------------------------------------------------------
# Determinism


@pytest.mark.parametrize("policy", ["fenced", "unfenced"])
def test_same_seed_same_run(policy):
    _s1, first = run_split(policy, seed=7)
    _s2, second = run_split(policy, seed=7)
    assert first.counters == second.counters
    assert first.violations == second.violations
    assert first.end_time == second.end_time


def test_sweep_serial_vs_parallel_bit_identical():
    seeds = [0, 1, 2]
    serial = ChaosRunner(SplitBrainScenario(policy="fenced")).sweep(
        seeds, processes=1
    )
    fanned = ChaosRunner(SplitBrainScenario(policy="fenced")).sweep(
        seeds, processes=2
    )
    assert serial.reports == fanned.reports
    assert serial.failures == fanned.failures


def test_unfenced_sweep_shrinks_and_replays():
    sweep = ChaosRunner(SplitBrainScenario(policy="unfenced")).sweep([0, 1])
    assert sweep.failures
    for failure in sweep.failures:
        assert failure.replay_matches


# ----------------------------------------------------------------------
# The E14 claim (CI chaos-smoke runs this under -m slow)


@pytest.mark.slow
def test_fenced_exactly_zero_unfenced_positive_across_seeds():
    for seed in (0, 1, 2):
        _s, fenced = run_split("fenced", seed)
        _s, unfenced = run_split("unfenced", seed)
        assert fenced.counters.get("chaos.splitbrain.lost_updates", 0.0) == 0, seed
        assert fenced.violations == (), seed
        assert unfenced.counters["chaos.splitbrain.lost_updates"] > 0, seed
