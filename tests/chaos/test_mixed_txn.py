"""Mixed-txn scenario: the three apology invariants under a scripted
mid-stream partition, for both cuts, plus bit-identical determinism.

The scenario is the executable form of the ISSUE's acceptance bar: every
reordered guess pairs with exactly one executed apology, the escrow never
over-grants after stabilization, and a strong ack is never reordered —
whether the cut deposes the leader (takeover + fence) or strands a
follower (quiet divergence)."""

import pytest

from repro.chaos.mixed_txn import MixedTxnScenario
from repro.chaos.plan import ChaosPlan
from repro.chaos.runner import ChaosRunner
from repro.errors import SimulationError

# The smoke-gate shape: short horizon, partition mid-stream, enough
# drain for every ticket to stabilize.
SHORT = dict(horizon=16.0, partition_start=4.0, partition_end=9.0, drain=8.0)


def run_mixed(cut, seed, plan=None, **kwargs):
    params = dict(SHORT)
    params.update(kwargs)
    scenario = MixedTxnScenario(cut=cut, **params)
    report = scenario.run(seed, plan if plan is not None else ChaosPlan())
    return scenario, report


# ----------------------------------------------------------------------
# The two cuts stay invariant-clean — and actually exercise the story


def test_leader_cut_is_clean_and_mints_apologies():
    _scenario, report = run_mixed("leader", seed=0)
    assert report.violations == ()
    counters = report.counters
    # The deposed leader kept guessing on the wrong side of the cut:
    # reorders happened, and every one of them was apologized for.
    assert counters["txn.reordered"] > 0
    assert counters["txn.apologies"] == counters["txn.reordered"]
    # The cut convicted the leader — a second regime took over.
    assert counters["txn.regimes"] >= 2


def test_minority_cut_is_clean_without_a_takeover():
    _scenario, report = run_mixed("minority", seed=0)
    assert report.violations == ()
    counters = report.counters
    # The stranded follower's guesses met the majority's order at heal.
    assert counters["txn.reordered"] > 0
    assert counters["txn.apologies"] == counters["txn.reordered"]
    # The leader kept its quorum and the monitor: one regime, no fence.
    assert counters["txn.regimes"] == 1


def test_sweep_stays_clean_across_seeds():
    for cut in ("leader", "minority"):
        scenario = MixedTxnScenario(cut=cut, **SHORT)
        result = ChaosRunner(scenario).sweep(range(3))
        assert not result.failures, (
            f"{cut} cut: {[c.violation for c in result.failures]}"
        )


def test_every_ticket_stabilizes_and_weak_acks_flow():
    scenario, report = run_mixed("leader", seed=1)
    assert all(t.stabilized for t in scenario.tickets)
    # Weak ops acked immediately even while the fabric was cut.
    assert report.counters["chaos.mixed_txn.weak_acks"] > 0
    assert report.counters["txn.guesses"] > 0


# ----------------------------------------------------------------------
# Determinism: same seed, same story, bit for bit


def test_seed_identical_runs_are_bit_identical():
    _s1, one = run_mixed("leader", seed=3)
    _s2, two = run_mixed("leader", seed=3)
    assert one.counters == two.counters
    assert one.end_time == two.end_time
    assert one.violations == two.violations


def test_different_seeds_tell_different_stories():
    _s1, one = run_mixed("leader", seed=0)
    _s2, two = run_mixed("leader", seed=1)
    assert one.counters != two.counters


# ----------------------------------------------------------------------
# The E18 claim (CI chaos-smoke runs this under -m slow)


@pytest.mark.slow
def test_e18_claim_weak_beats_strong_priced_in_apologies():
    """The full sweep: in-partition goodput favors the guesses at every
    mix and cut, and the apology rate is the bill."""
    from benchmarks.bench_e18_mixed_txn import _check_claims, run_sweep

    _check_claims(run_sweep())


# ----------------------------------------------------------------------
# Config validation


def test_unknown_cut_is_rejected():
    with pytest.raises(SimulationError):
        MixedTxnScenario(cut="diagonal")


def test_bad_weak_fraction_is_rejected():
    with pytest.raises(SimulationError):
        MixedTxnScenario(weak_fraction=1.5)
