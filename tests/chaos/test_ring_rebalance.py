"""Ring-rebalance chaos scenario: joins and a decommission mid-traffic."""

import pytest

from repro.chaos.ring_rebalance import RingRebalanceScenario
from repro.errors import SimulationError


def test_sweeps_clean_across_seeds():
    scenario = RingRebalanceScenario()
    for seed in range(3):
        report = scenario.run(seed, scenario.spec().sample(seed))
        assert not report.violations, report.violations
        assert report.counters["chaos.rebalance.acked_puts"] > 0
        assert report.counters["dynamo.ring_joins"] == 2
        assert report.counters["dynamo.ring_decommissions"] == 1


def test_rebalance_moves_versions():
    scenario = RingRebalanceScenario()
    report = scenario.run(1, scenario.spec().sample(1))
    assert report.counters["chaos.rebalance.versions_rebalanced"] > 0


def test_replay_is_deterministic():
    scenario = RingRebalanceScenario()
    plan = scenario.spec().sample(2)
    first = scenario.run(2, plan)
    second = scenario.run(2, plan)
    assert first.counters == second.counters
    assert first.end_time == second.end_time
    assert first.violations == second.violations


def test_spec_samples_message_chaos_only():
    """Crashing nodes on top of a decommission would make no-acked-write
    -lost unsatisfiable by design; the reshape schedule is the
    scenario's own seeded timeline."""
    scenario = RingRebalanceScenario()
    for seed in range(5):
        plan = scenario.spec().sample(seed)
        assert not plan.crashes
        assert not plan.partitions


def test_bad_parameters_rejected():
    with pytest.raises(SimulationError):
        RingRebalanceScenario(policy="bogus")
    with pytest.raises(SimulationError):
        RingRebalanceScenario(num_nodes=4)
