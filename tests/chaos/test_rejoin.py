"""Rejoin chaos scenario: rolling cold restarts, no acked write lost."""

import pytest

from repro.chaos.plan import ChaosPlan, CrashEpisode
from repro.chaos.rejoin import RejoinScenario
from repro.errors import SimulationError


def test_snapshot_policy_sweeps_clean():
    scenario = RejoinScenario()
    for seed in range(3):
        report = scenario.run(seed, scenario.spec().sample(seed))
        assert not report.violations, report.violations
        assert report.counters["chaos.rejoin.acked_puts"] > 0


def test_no_snapshot_policy_also_clean_but_seeds_nothing():
    """Correctness does not depend on snapshots (anti-entropy repairs
    everything) — the snapshot changes the rejoin *cost*, not the answer."""
    scenario = RejoinScenario(policy="no-snapshot")
    report = scenario.run(1, scenario.spec().sample(1))
    assert not report.violations
    assert report.counters.get("chaos.rejoin.seeded_versions", 0) == 0


def test_snapshot_seeds_the_bulk_of_lost_state():
    scenario = RejoinScenario()
    report = scenario.run(3, scenario.spec().sample(3))
    lost = report.counters["chaos.rejoin.versions_lost_at_crash"]
    seeded = report.counters["chaos.rejoin.seeded_versions"]
    assert lost > 0
    assert seeded > 0.5 * lost  # most of the store came back from disk


def test_time_to_converged_is_measured():
    scenario = RejoinScenario()
    report = scenario.run(2, scenario.spec().sample(2))
    assert not report.violations
    assert report.counters["chaos.invariant.checks"] >= 2


def test_crash_fraction_victims():
    assert RejoinScenario(num_nodes=10, crash_fraction=0.2).victim_count() == 2
    assert RejoinScenario(num_nodes=5, crash_fraction=0.2).victim_count() == 1
    with pytest.raises(SimulationError):
        RejoinScenario(crash_fraction=0.8)
    with pytest.raises(SimulationError):
        RejoinScenario(policy="bogus")


def test_spec_samples_no_crashes():
    """Crash scheduling belongs to the scenario's rolling cycle; sampled
    plans add only message chaos."""
    scenario = RejoinScenario()
    for seed in range(5):
        plan = scenario.spec().sample(seed)
        assert not plan.crashes
        assert not plan.partitions


def test_hand_written_crash_plan_uses_cold_path():
    """A plan crash episode goes through cold_crash/cold_restart (store
    lost, snapshot seed) and still loses nothing."""
    scenario = RejoinScenario()
    plan = ChaosPlan((CrashEpisode("node1", at=6.0, back_at=9.0),))
    report = scenario.run(4, plan)
    assert not report.violations
    assert report.counters["dynamo.node1.cold_crashes"] == 1


def test_replays_bit_for_bit():
    scenario = RejoinScenario()
    plan = scenario.spec().sample(5)
    first = scenario.run(5, plan)
    second = scenario.run(5, plan)
    assert first.counters == second.counters
    assert first.end_time == second.end_time
