"""ChaosRunner end-to-end: sweeps, shrinking, bit-for-bit replay.

The acceptance story: a seeded sweep over the bank-clearing scenario
with a deliberately broken policy finds an invariant violation, shrinks
it to a minimal ChaosPlan, and replaying that plan with the same seed
reproduces the identical violation.
"""

import pytest

from repro.chaos import (
    BankClearingScenario,
    CartDynamoScenario,
    ChaosPlan,
    ChaosRunner,
)
from repro.chaos.plan import CrashEpisode


def test_correct_policy_survives_sweep():
    scenario = BankClearingScenario(policy="correct")
    result = ChaosRunner(scenario).sweep(range(3))
    assert result.runs == 3
    assert not result.failures
    assert result.violation_rate == 0.0


def test_broken_policy_found_shrunk_and_replayed():
    """The headline path: find -> shrink -> replay identically."""
    scenario = BankClearingScenario(policy="amnesiac-restart")
    runner = ChaosRunner(scenario, spec=scenario.spec(min_crashes=1))
    result = runner.sweep(range(3))

    # The sweep finds the planted bug.
    assert result.failures, "amnesiac-restart policy was not caught"
    for case in result.failures:
        assert case.violation.invariant == "conservation-of-money"

        # Shrinking produced a minimal plan: the bug needs a crash, so
        # the plan cannot be empty, and greedy dropping leaves one episode.
        assert 1 <= len(case.minimal_plan) <= len(case.plan)
        assert case.minimal_plan.crashes, "the violation requires a crash"

        # The minimal plan still shows the *same* bug...
        assert case.minimal_violation is not None
        assert case.minimal_violation.signature == case.violation.signature

        # ...and replays bit-for-bit from its seed: identical violation
        # (time, detail, phase, trace context) and identical counters.
        assert case.replay_matches

    # Violation rates flow through the runner's metrics registry.
    counters = runner.metrics.counters()
    assert counters["chaos.runs"] == 3
    assert counters["chaos.failing_runs"] == len(result.failures)
    assert counters["chaos.shrink.evals"] >= 1


def test_minimal_plan_replay_is_exact():
    """Replaying a shrunk plan twice gives equal reports, field for field."""
    scenario = BankClearingScenario(policy="amnesiac-restart")
    runner = ChaosRunner(scenario, spec=scenario.spec(min_crashes=1))
    case = runner.sweep([0]).failures[0]

    first = scenario.run(case.seed, case.minimal_plan)
    second = scenario.run(case.seed, case.minimal_plan)
    assert first.violations == second.violations
    assert first.counters == second.counters
    assert first.violations[0] == case.minimal_violation


def test_chaos_free_bug_shrinks_to_empty_plan():
    """branch-uniquifier double-debits without any chaos at all, so the
    shrinker should strip the schedule down to nothing."""
    scenario = BankClearingScenario(policy="branch-uniquifier")
    result = ChaosRunner(scenario).sweep([0])
    assert result.failures
    case = result.failures[0]
    assert case.violation.invariant == "no-duplicate-debit"
    assert len(case.minimal_plan) == 0
    assert case.replay_matches


def test_fixed_plan_runner_skips_sampling():
    plan = ChaosPlan((CrashEpisode("g0", 5.0, 8.0),))
    runner = ChaosRunner(BankClearingScenario(policy="correct"), plan=plan)
    assert runner.plan_for(0) == plan
    assert runner.plan_for(99) == plan
    report = runner.run_seed(0)
    assert not report.failed


def test_lww_cart_loses_adds_and_op_cart_does_not():
    """§6.1 under the same chaos plan: the op-centric cart keeps every
    acknowledged add; last-writer-wins drops some."""
    seed = 6  # a seed whose sampled plan splits the two shoppers
    lww = CartDynamoScenario(policy="lww")
    report = lww.run(seed, lww.spec().sample(seed))
    assert report.failed
    assert report.violations[0].invariant == "no-lost-cart-adds"

    correct = CartDynamoScenario(policy="correct")
    assert not correct.run(seed, correct.spec().sample(seed)).failed


def test_lww_cart_failure_shrinks_and_replays():
    result = ChaosRunner(CartDynamoScenario(policy="lww")).sweep([6])
    assert result.failures
    case = result.failures[0]
    assert len(case.minimal_plan) <= len(case.plan)
    assert case.replay_matches


def test_smoke_cli_entrypoint():
    from repro.chaos.runner import main

    assert main(["--scenario", "bank", "--seeds", "2"]) == 0
    assert main(["--scenario", "bank", "--policy", "branch-uniquifier",
                 "--seeds", "1"]) == 1
