"""InvariantMonitor and the predicate builders."""

import pytest

from repro.chaos.invariants import (
    InvariantMonitor,
    Violation,
    _states_equivalent,
    balance_matches_entries,
    escrow_non_negative,
    no_duplicate_debits,
    no_lost_cart_adds,
    no_money_created,
    replicas_converge,
)
from repro.bank.account import build_account_registry
from repro.core.escrow import EscrowAccount
from repro.core.operation import Operation
from repro.core.replica import Replica
from repro.errors import SimulationError
from repro.sim.scheduler import Simulator


# ----------------------------------------------------------------------
# The monitor


def test_cadence_checks_run_on_schedule():
    sim = Simulator(seed=0)
    monitor = InvariantMonitor(sim)
    calls = []
    monitor.register("probe", lambda: calls.append(sim.now) or None)
    monitor.start(period=1.0, until=5.0)
    sim.run(until=10.0)
    assert calls == [1.0, 2.0, 3.0, 4.0, 5.0]
    assert monitor.ok


def test_violation_is_latched_and_recorded_with_context():
    sim = Simulator(seed=0)
    sim.trace.emit("test", "before", detail="context-marker")
    monitor = InvariantMonitor(sim, context_records=4)
    monitor.register("always-broken", lambda: "it broke")
    monitor.start(period=1.0, until=5.0)
    sim.run(until=10.0)

    # Latched: one violation despite five cadence checks.
    assert len(monitor.violations) == 1
    violation = monitor.violations[0]
    assert violation.invariant == "always-broken"
    assert violation.detail == "it broke"
    assert violation.time == 1.0
    assert violation.phase == "cadence"
    assert any("context-marker" in line for line in violation.context)
    assert not monitor.ok
    assert sim.metrics.counter("chaos.violation.always-broken").value == 1


def test_quiesce_only_invariants_skip_cadence():
    sim = Simulator(seed=0)
    monitor = InvariantMonitor(sim)
    monitor.register("final-only", lambda: "broken at the end", when="quiesce")
    monitor.start(period=1.0, until=3.0)
    sim.run(until=5.0)
    assert monitor.ok
    found = monitor.check_now("quiesce")
    assert [v.invariant for v in found] == ["final-only"]
    assert found[0].phase == "quiesce"


def test_register_rejects_duplicates_and_bad_schedule():
    monitor = InvariantMonitor(Simulator(seed=0))
    monitor.register("x", lambda: None)
    with pytest.raises(SimulationError):
        monitor.register("x", lambda: None)
    with pytest.raises(SimulationError):
        monitor.register("y", lambda: None, when="sometimes")
    with pytest.raises(SimulationError):
        monitor.start(period=0.0, until=1.0)


def test_violation_signature_ignores_time_and_context():
    a = Violation("inv", 1.0, "detail", "cadence", context=("t1",))
    b = Violation("inv", 9.0, "detail", "quiesce", context=("t2",))
    assert a.signature == b.signature
    assert a != b


# ----------------------------------------------------------------------
# Predicate builders


def make_replicas(count=2):
    registry = build_account_registry()
    return [Replica(f"r{i}", registry) for i in range(count)]


def op(uniquifier, op_type="DEPOSIT", **args):
    args.setdefault("amount", 100.0)
    return Operation(op_type, args, uniquifier=uniquifier, origin="test",
                     ingress_time=0.0)


def test_balance_matches_entries_detects_corruption():
    replicas = make_replicas()
    for replica in replicas:
        replica.integrate([op("d1")])
    check = balance_matches_entries(replicas)
    assert check() is None
    replicas[1].state = dict(replicas[1].state, balance=999.0)
    assert "r1" in check()


def test_no_money_created_passes_on_exact_deposits():
    replicas = make_replicas()
    for replica in replicas:
        replica.integrate([op("d1", amount=50.0)])
    check = no_money_created(replicas, lambda: 50.0)
    assert check() is None


def test_no_money_created_catches_recovery_recredit():
    replicas = make_replicas()
    replicas[0].integrate([op("d1", amount=50.0), op("recovery:1", amount=50.0)])
    check = no_money_created(replicas, lambda: 50.0)
    assert "exceed" in check()


def test_no_duplicate_debits_keys_on_check_number():
    replicas = make_replicas()
    ops = [
        op("check:1", "CLEAR_CHECK", amount=10.0, check_no=1),
        op("check:2", "CLEAR_CHECK", amount=20.0, check_no=2),
    ]
    replicas[0].integrate(ops)
    check = no_duplicate_debits(replicas)
    assert check() is None
    # the same physical check under a second uniquifier = double debit
    replicas[0].integrate([op("check:1@b2", "CLEAR_CHECK", amount=10.0, check_no=1)])
    assert "debited twice" in check()


def test_replicas_converge_detects_missing_ops():
    replicas = make_replicas()
    replicas[0].integrate([op("d1")])
    check = replicas_converge(replicas)
    assert "disagree" in check()
    replicas[1].integrate([op("d1")])
    assert check() is None


def test_states_equivalent_tolerates_float_summation_order():
    # 0.1+0.2+0.3 != 0.3+0.2+0.1 bitwise; convergence must not care.
    a = {"balance": (0.1 + 0.2) + 0.3, "entries": frozenset({1})}
    b = {"balance": 0.1 + (0.2 + 0.3), "entries": frozenset({1})}
    assert a["balance"] != b["balance"]
    assert _states_equivalent(a, b)
    assert not _states_equivalent(a, {"balance": 0.7, "entries": frozenset({1})})
    assert not _states_equivalent(a, {"balance": a["balance"]})


def test_escrow_non_negative():
    sim = Simulator(seed=0)
    account = EscrowAccount(sim, initial=10.0, minimum=0.0, maximum=100.0)
    check = escrow_non_negative(account)
    assert check() is None
    account.value = -1.0
    assert "below" in check()


def test_no_lost_cart_adds():
    acked = {"book": 1, "pen": 1}
    view = {"book": 1, "pen": 1, "extra": 3}
    assert no_lost_cart_adds(lambda: acked, lambda: view)() is None
    assert "pen" in no_lost_cart_adds(lambda: acked, lambda: {"book": 1})()
