"""The shared multiprocessing executor: order, fallback, determinism.

The load-bearing claim: fanning a sweep out over worker processes changes
wall time only — reports, metrics, and aggregates are bit-identical to
the serial path, because every unit of work builds its own Simulator
(which resets the process-global counters via the fresh-run hooks).
"""

import pytest

from repro.analysis.sweep import sweep
from repro.chaos.runner import ChaosRunner
from repro.chaos.scenarios import BankClearingScenario
from repro.parallel import parallel_map


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"boom {value}")


def _bank_metrics(value, seed):
    scenario = BankClearingScenario(policy="correct")
    report = scenario.run(seed, scenario.spec().sample(seed))
    return {
        "violations": len(report.violations),
        "end_time": report.end_time,
        "param_echo": len(value),
    }


def test_parallel_map_preserves_order_serial():
    assert parallel_map(_square, [3, 1, 2], processes=1) == [9, 1, 4]


def test_parallel_map_preserves_order_with_pool():
    assert parallel_map(_square, list(range(10)), processes=2) == [
        n * n for n in range(10)
    ]


def test_parallel_map_empty_and_single():
    assert parallel_map(_square, [], processes=4) == []
    assert parallel_map(_square, [7], processes=4) == [49]


def test_parallel_map_worker_exception_propagates():
    with pytest.raises(ValueError):
        parallel_map(_boom, [1, 2, 3], processes=2)


def test_chaos_sweep_parallel_matches_serial():
    seeds = [0, 1, 2]
    serial_runner = ChaosRunner(BankClearingScenario(policy="correct"))
    parallel_runner = ChaosRunner(BankClearingScenario(policy="correct"))

    serial = serial_runner.sweep(seeds, shrink=False, processes=1)
    parallel = parallel_runner.sweep(seeds, shrink=False, processes=2)

    assert serial.reports == parallel.reports
    assert serial.failures == parallel.failures
    assert (
        serial_runner.metrics.counters() == parallel_runner.metrics.counters()
    )


def test_analysis_sweep_parallel_matches_serial():
    serial = sweep(["a", "b"], _bank_metrics, seeds=(0, 1), processes=1)
    parallel = sweep(["a", "b"], _bank_metrics, seeds=(0, 1), processes=2)
    assert serial == parallel
    assert [p.parameter for p in parallel] == ["a", "b"]
    assert all(p.runs == 2 for p in parallel)
