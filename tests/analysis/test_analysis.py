"""Tables and stats helpers."""

import math

import pytest

from repro.analysis import Table, ratio, summarize
from repro.errors import SimulationError


def test_table_renders_aligned():
    table = Table("T", ["name", "value"])
    table.add_row("a", 1.0)
    table.add_row("longer-name", 123456.0)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2] and "value" in lines[2]
    assert len(lines) == 6


def test_table_row_arity_checked():
    table = Table("T", ["a", "b"])
    with pytest.raises(SimulationError):
        table.add_row(1)


def test_table_needs_columns():
    with pytest.raises(SimulationError):
        Table("T", [])


def test_float_formatting():
    table = Table("T", ["v"])
    table.add_row(0.000001)
    table.add_row(1234567.0)
    table.add_row(0)
    text = table.render()
    assert "1e-06" in text
    assert "1.23e+06" in text


def test_render_markdown():
    table = Table("T", ["a", "b"])
    table.add_row(1, 2.5)
    text = table.render_markdown()
    lines = text.splitlines()
    assert lines[0] == "**T**"
    assert lines[2] == "| a | b |"
    assert lines[3] == "|---|---|"
    assert lines[4] == "| 1 | 2.5 |"


def test_summarize_basic():
    result = summarize([1.0, 2.0, 3.0])
    assert result["mean"] == 2.0
    assert result["n"] == 3
    assert result["ci95"] > 0


def test_summarize_empty_and_single():
    assert math.isnan(summarize([])["mean"])
    single = summarize([5.0])
    assert single["mean"] == 5.0
    assert single["ci95"] == 0.0


def test_ratio():
    assert ratio(10.0, 2.0) == 5.0
    assert math.isinf(ratio(1.0, 0.0))
    assert math.isnan(ratio(0.0, 0.0))
