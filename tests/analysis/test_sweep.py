"""Sweep harness."""

import pytest

from repro.analysis import SweepPoint, monotone, sweep
from repro.errors import SimulationError


def test_sweep_averages_over_seeds():
    points = sweep(
        [1, 2],
        run=lambda value, seed: {"out": value * 10 + seed},
        seeds=(0, 1, 2),
    )
    assert [p.parameter for p in points] == [1, 2]
    assert points[0].means["out"] == pytest.approx(11.0)
    assert points[1].means["out"] == pytest.approx(21.0)
    assert points[0].runs == 3


def test_sweep_validates_inputs():
    with pytest.raises(SimulationError):
        sweep([], run=lambda v, s: {})
    with pytest.raises(SimulationError):
        sweep([1], run=lambda v, s: {}, seeds=())


def test_sweep_rejects_inconsistent_keys():
    def flaky(value, seed):
        return {"a": 1.0} if seed == 0 else {"b": 1.0}

    with pytest.raises(SimulationError):
        sweep([1], run=flaky, seeds=(0, 1))


def test_booleans_average_as_rates():
    points = sweep([1], run=lambda v, s: {"ok": s < 2}, seeds=(0, 1, 2, 3))
    assert points[0].means["ok"] == pytest.approx(0.5)


def test_monotone_checks():
    points = [
        SweepPoint(1, {"y": 1.0}, 1),
        SweepPoint(2, {"y": 2.0}, 1),
        SweepPoint(3, {"y": 2.0}, 1),
    ]
    assert monotone(points, "y", increasing=True)
    assert not monotone(points, "y", increasing=False)
    assert monotone(list(reversed(points)), "y", increasing=False)
