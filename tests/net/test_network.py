"""Fabric delivery: latency, loss, duplication, partitions, crashes."""

import pytest

from repro.errors import SimulationError
from repro.net import FixedLatency, LinkConfig, Message, Network
from repro.sim import Simulator


def make_net(seed=0, **link_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, default_link=LinkConfig(**link_kwargs))
    return sim, net


def test_basic_delivery_with_latency():
    sim, net = make_net(latency=FixedLatency(2.5))
    box = net.attach("b")
    net.attach("a")
    assert net.send(Message("a", "b", "ping"))
    sim.run()
    assert sim.now == 2.5
    msg = box.try_get()
    assert msg is not None and msg.kind == "ping"


def test_send_to_unknown_endpoint_drops():
    sim, net = make_net()
    net.attach("a")
    assert not net.send(Message("a", "ghost", "ping"))
    assert sim.metrics.counter("net.dropped").value == 1


def test_double_attach_rejected():
    _sim, net = make_net()
    net.attach("a")
    with pytest.raises(SimulationError):
        net.attach("a")


def test_detach_drops_messages_and_reattach_revives():
    sim, net = make_net()
    net.attach("a")
    box = net.attach("b")
    box.put(Message("a", "b", "stale"))
    net.detach("b")
    assert not net.send(Message("a", "b", "ping"))
    fresh = net.attach("b")
    assert net.send(Message("a", "b", "pong"))
    sim.run()
    assert fresh.try_get().kind == "pong"
    assert len(box) == 0  # stale message was drained on detach


def test_loss_probability_one_drops_everything():
    sim, net = make_net(loss_probability=1.0)
    net.attach("a")
    box = net.attach("b")
    for _ in range(10):
        net.send(Message("a", "b", "ping"))
    sim.run()
    assert len(box) == 0
    assert sim.metrics.counter("net.dropped").value == 10


def test_loss_probability_statistical():
    sim, net = make_net(seed=1, loss_probability=0.5)
    net.attach("a")
    box = net.attach("b")
    for _ in range(400):
        net.send(Message("a", "b", "ping"))
    sim.run()
    assert 140 < len(box) < 260  # ~200 expected


def test_duplication():
    sim, net = make_net(duplicate_probability=1.0)
    net.attach("a")
    box = net.attach("b")
    net.send(Message("a", "b", "ping"))
    sim.run()
    assert len(box) == 2


def test_partition_blocks_cross_group():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    box_c = net.attach("c")
    net.partition([["a", "b"], ["c"]])
    assert net.reachable("a", "b")
    assert not net.reachable("a", "c")
    assert not net.send(Message("a", "c", "ping"))
    net.heal()
    assert net.send(Message("a", "c", "ping"))
    sim.run()
    assert len(box_c) == 1


def test_partition_remainder_group():
    _sim, net = make_net()
    for name in ("a", "b", "x", "y"):
        net.attach(name)
    net.partition([["a", "b"]])
    assert net.reachable("x", "y")  # both in implicit remainder
    assert not net.reachable("a", "x")


def test_in_flight_message_lost_to_partition_cut():
    sim, net = make_net(latency=FixedLatency(5.0))
    net.attach("a")
    box = net.attach("b")
    net.send(Message("a", "b", "ping"))
    sim.schedule(1.0, net.partition, [["a"], ["b"]])
    sim.run()
    assert len(box) == 0


def test_in_flight_message_lost_to_crash():
    sim, net = make_net(latency=FixedLatency(5.0))
    net.attach("a")
    box = net.attach("b")
    net.send(Message("a", "b", "ping"))
    sim.schedule(1.0, net.detach, "b")
    sim.run()
    assert len(box) == 0


def test_per_link_override():
    sim, net = make_net(latency=FixedLatency(1.0))
    net.attach("a")
    box = net.attach("b")
    net.set_link("a", "b", LinkConfig(latency=FixedLatency(10.0)))
    net.send(Message("a", "b", "slow"))
    sim.run()
    assert sim.now == 10.0
    assert len(box) == 1


def test_message_reply_correlation():
    request = Message("client", "server", "ask", {"q": 1})
    response = request.reply("OK", answer=2)
    assert response.src == "server"
    assert response.dst == "client"
    assert response.reply_to == request.msg_id
    assert response.payload == {"answer": 2}


def test_metrics_counters():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    net.send(Message("a", "b", "ping"))
    sim.run()
    assert sim.metrics.counter("net.sent").value == 1
    assert sim.metrics.counter("net.delivered").value == 1
