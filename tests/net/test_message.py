"""Message basics."""

from repro.net import Message


def test_ids_are_unique_and_increasing():
    a = Message("x", "y", "k")
    b = Message("x", "y", "k")
    assert b.msg_id > a.msg_id


def test_default_payload_is_fresh_per_message():
    a = Message("x", "y", "k")
    b = Message("x", "y", "k")
    a.payload["tainted"] = True
    assert b.payload == {}


def test_reply_chain():
    request = Message("c", "s", "ask", {"q": 1})
    response = request.reply("OK", answer=2)
    followup = response.reply("ACK")
    assert followup.src == "c" and followup.dst == "s"
    assert followup.reply_to == response.msg_id


def test_repr_mentions_route():
    msg = Message("alice", "bob", "PING")
    assert "alice->bob" in repr(msg)
