"""Latency model units."""

import random

import pytest

from repro.errors import SimulationError
from repro.net import ExponentialLatency, FixedLatency, UniformLatency


def test_fixed():
    model = FixedLatency(0.5)
    assert model.sample(random.Random(0)) == 0.5


def test_fixed_negative_rejected():
    with pytest.raises(SimulationError):
        FixedLatency(-0.1)


def test_uniform_in_range():
    model = UniformLatency(1.0, 2.0)
    rng = random.Random(1)
    for _ in range(100):
        assert 1.0 <= model.sample(rng) <= 2.0


def test_uniform_bad_range_rejected():
    with pytest.raises(SimulationError):
        UniformLatency(2.0, 1.0)
    with pytest.raises(SimulationError):
        UniformLatency(-1.0, 1.0)


def test_exponential_at_least_floor():
    model = ExponentialLatency(floor=0.02, mean_extra=0.01)
    rng = random.Random(1)
    samples = [model.sample(rng) for _ in range(500)]
    assert all(s >= 0.02 for s in samples)
    mean = sum(samples) / len(samples)
    assert 0.025 < mean < 0.035  # floor + ~mean_extra


def test_exponential_zero_extra_is_fixed():
    model = ExponentialLatency(floor=0.02, mean_extra=0.0)
    assert model.sample(random.Random(0)) == 0.02


def test_exponential_bad_params_rejected():
    with pytest.raises(SimulationError):
        ExponentialLatency(-1.0, 0.1)
    with pytest.raises(SimulationError):
        ExponentialLatency(0.1, -1.0)
