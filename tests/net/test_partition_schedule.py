"""Scheduled partition windows."""

import pytest

from repro.errors import SimulationError
from repro.net import Network
from repro.net.partition import PartitionSchedule, PartitionWindow, periodic_partitions
from repro.sim import Simulator


def test_window_cut_and_heal():
    sim = Simulator()
    net = Network(sim)
    net.attach("a")
    net.attach("b")
    schedule = PartitionSchedule(net, [PartitionWindow(5.0, 10.0, [["a"], ["b"]])])
    schedule.install()
    sim.run(until=6.0)
    assert not net.reachable("a", "b")
    sim.run(until=11.0)
    assert net.reachable("a", "b")


def test_empty_window_rejected():
    with pytest.raises(SimulationError):
        PartitionWindow(5.0, 5.0, [["a"]])


def test_overlapping_windows_rejected():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(SimulationError):
        PartitionSchedule(
            net,
            [
                PartitionWindow(0.0, 10.0, [["a"]]),
                PartitionWindow(5.0, 15.0, [["a"]]),
            ],
        )


def test_periodic_partitions():
    sim = Simulator()
    net = Network(sim)
    net.attach("a")
    net.attach("b")
    schedule = periodic_partitions(
        net, [["a"], ["b"]], period=10.0, duration=2.0, count=3, first_start=1.0
    )
    schedule.install()
    cut_spans = [(w.start, w.end) for w in schedule.windows]
    assert cut_spans == [(1.0, 3.0), (11.0, 13.0), (21.0, 23.0)]
    sim.run(until=2.0)
    assert net.partitioned
    sim.run(until=4.0)
    assert not net.partitioned
    sim.run(until=12.0)
    assert net.partitioned


def test_periodic_duration_must_fit_period():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(SimulationError):
        periodic_partitions(net, [["a"]], period=5.0, duration=5.0, count=1)
