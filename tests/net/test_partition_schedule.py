"""Scheduled partition windows."""

import pytest

from repro.errors import SimulationError
from repro.net import Network
from repro.net.partition import PartitionSchedule, PartitionWindow, periodic_partitions
from repro.sim import Simulator


def test_window_cut_and_heal():
    sim = Simulator()
    net = Network(sim)
    net.attach("a")
    net.attach("b")
    schedule = PartitionSchedule(net, [PartitionWindow(5.0, 10.0, [["a"], ["b"]])])
    schedule.install()
    sim.run(until=6.0)
    assert not net.reachable("a", "b")
    sim.run(until=11.0)
    assert net.reachable("a", "b")


def test_empty_window_rejected():
    with pytest.raises(SimulationError):
        PartitionWindow(5.0, 5.0, [["a"]])


def test_overlapping_windows_rejected():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(SimulationError):
        PartitionSchedule(
            net,
            [
                PartitionWindow(0.0, 10.0, [["a"]]),
                PartitionWindow(5.0, 15.0, [["a"]]),
            ],
        )


def test_periodic_partitions():
    sim = Simulator()
    net = Network(sim)
    net.attach("a")
    net.attach("b")
    schedule = periodic_partitions(
        net, [["a"], ["b"]], period=10.0, duration=2.0, count=3, first_start=1.0
    )
    schedule.install()
    cut_spans = [(w.start, w.end) for w in schedule.windows]
    assert cut_spans == [(1.0, 3.0), (11.0, 13.0), (21.0, 23.0)]
    sim.run(until=2.0)
    assert net.partitioned
    sim.run(until=4.0)
    assert not net.partitioned
    sim.run(until=12.0)
    assert net.partitioned


def test_periodic_duration_must_fit_period():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(SimulationError):
        periodic_partitions(net, [["a"]], period=5.0, duration=5.0, count=1)


def test_back_to_back_windows_sharing_a_boundary():
    """end == start is not an overlap: the first heal and the second cut
    both land at t=10, and the second partition must win."""
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c"):
        net.attach(name)
    schedule = PartitionSchedule(net, [
        PartitionWindow(5.0, 10.0, [["a"], ["b", "c"]]),
        PartitionWindow(10.0, 15.0, [["a", "b"], ["c"]]),
    ])
    schedule.install()
    sim.run(until=7.0)
    assert not net.reachable("a", "b")
    assert net.reachable("b", "c")
    sim.run(until=12.0)  # past the shared boundary
    assert net.reachable("a", "b")
    assert not net.reachable("b", "c")
    sim.run(until=16.0)
    assert net.reachable("b", "c")
    assert not net.partitioned


def test_single_node_group_isolates_that_node():
    sim = Simulator()
    net = Network(sim)
    for name in ("a", "b", "c"):
        net.attach(name)
    schedule = PartitionSchedule(net, [PartitionWindow(1.0, 5.0, [["a"]])])
    schedule.install()
    sim.run(until=2.0)
    assert not net.reachable("a", "b")
    assert not net.reachable("a", "c")
    # the unlisted endpoints share the implicit remainder group
    assert net.reachable("b", "c")
    assert net.reachable("a", "a")
    sim.run(until=6.0)
    assert net.reachable("a", "b")


def test_touching_overlap_rejected_exactly_at_interior_point():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(SimulationError):
        PartitionSchedule(net, [
            PartitionWindow(0.0, 10.0, [["a"]]),
            PartitionWindow(9.999, 20.0, [["a"]]),
        ])


def test_unsorted_windows_are_validated_in_time_order():
    sim = Simulator()
    net = Network(sim)
    with pytest.raises(SimulationError):
        PartitionSchedule(net, [
            PartitionWindow(10.0, 20.0, [["a"]]),
            PartitionWindow(0.0, 15.0, [["a"]]),
        ])


def test_heal_is_traced():
    sim = Simulator()
    net = Network(sim)
    net.attach("a")
    net.attach("b")
    PartitionSchedule(net, [PartitionWindow(1.0, 2.0, [["a"], ["b"]])]).install()
    sim.run(until=3.0)
    assert sim.trace.count(kind="partition.heal") == 1
