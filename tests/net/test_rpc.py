"""RPC: request/reply, retries, idempotent dedup, crashes."""

import pytest

from repro.errors import TimeoutError_
from repro.net import Endpoint, FixedLatency, LinkConfig, Network
from repro.net.rpc import RpcError, fresh_uniquifier
from repro.sim import Simulator, Timeout


def setup_pair(seed=0, **link_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, default_link=LinkConfig(**link_kwargs))
    server = Endpoint(net, "server", dedup=True)
    client = Endpoint(net, "client")
    server.start()
    client.start()
    return sim, net, server, client


def test_simple_call():
    sim, _net, server, client = setup_pair()

    @server.on("add")
    def add(_ep, msg):
        return {"sum": msg.payload["a"] + msg.payload["b"]}

    def run():
        result = yield from client.call("server", "add", {"a": 2, "b": 3})
        return result["sum"]

    assert sim.run_process(run()) == 5


def test_generator_handler_can_take_time():
    sim, _net, server, client = setup_pair()

    @server.on("slow")
    def slow(_ep, _msg):
        yield Timeout(4.0)
        return {"done": True}

    def run():
        result = yield from client.call("server", "slow", timeout=10.0)
        return (result["done"], sim.now)

    done, now = sim.run_process(run())
    assert done is True
    assert now >= 4.0


def test_handler_error_raises_rpc_error():
    sim, _net, server, client = setup_pair()

    @server.on("boom")
    def boom(_ep, _msg):
        raise ValueError("kaput")

    def run():
        try:
            yield from client.call("server", "boom")
        except RpcError as exc:
            return exc.detail

    assert sim.run_process(run()) == "kaput"


def test_unknown_kind_is_error():
    sim, _net, _server, client = setup_pair()

    def run():
        try:
            yield from client.call("server", "nothing")
        except RpcError as exc:
            return str(exc)

    assert "no handler" in sim.run_process(run())


def test_retry_after_loss_succeeds_idempotently():
    """50% loss: the call should eventually land, and dedup must keep the
    side effect to one execution even when retries reach the server."""
    sim, _net, server, client = setup_pair(seed=3, loss_probability=0.4)
    executions = []

    @server.on("do")
    def do(_ep, msg):
        executions.append(msg.payload["uniquifier"])
        return {"ok": True}

    def run():
        result = yield from client.call("server", "do", timeout=0.5, retries=20)
        return result["ok"]

    assert sim.run_process(run()) is True
    assert len(set(executions)) == len(executions) == 1


def test_timeout_after_exhausting_retries():
    sim, _net, _server, client = setup_pair(loss_probability=1.0)

    def run():
        try:
            yield from client.call("server", "x", timeout=0.2, retries=2)
        except TimeoutError_:
            return "gave up"

    assert sim.run_process(run()) == "gave up"
    assert sim.metrics.counter("rpc.client.retries").value == 3


def test_dedup_cache_answers_retries_without_rerun():
    sim, _net, server, client = setup_pair()
    runs = []

    @server.on("do")
    def do(_ep, msg):
        runs.append(1)
        return {"n": len(runs)}

    def run():
        first = yield from client.call("server", "do", {"uniquifier": "u-1"})
        second = yield from client.call("server", "do", {"uniquifier": "u-1"})
        return (first["n"], second["n"])

    assert sim.run_process(run()) == (1, 1)
    assert len(runs) == 1
    assert sim.metrics.counter("rpc.server.dedup_hits").value == 1


def test_dedup_cache_is_volatile_across_crash():
    """Fail-fast: a restart forgets the dedup cache — the uniquifier only
    protects within one incarnation unless the app makes it durable."""
    sim, _net, server, client = setup_pair()
    runs = []

    @server.on("do")
    def do(_ep, msg):
        runs.append(1)
        return {"n": len(runs)}

    def run():
        yield from client.call("server", "do", {"uniquifier": "u-1"})
        server.stop("crash")
        server.restart()
        yield from client.call("server", "do", {"uniquifier": "u-1"}, timeout=2.0)
        return len(runs)

    assert sim.run_process(run()) == 2


def test_stop_fails_outstanding_calls():
    sim, _net, server, client = setup_pair()

    @server.on("slow")
    def slow(_ep, _msg):
        yield Timeout(100.0)
        return {}

    def run():
        try:
            yield from client.call("server", "slow", timeout=5.0, retries=0)
        except TimeoutError_:
            return "timed out"

    def crasher():
        yield Timeout(1.0)
        server.stop("dead")

    sim.spawn(crasher())
    assert sim.run_process(run()) == "timed out"


def test_restart_is_idempotent():
    """A double restart must not leave two serve loops racing on one
    mailbox: restarting a serving endpoint is a no-op."""
    sim, _net, server, client = setup_pair()
    calls = []

    @server.on("do")
    def do(_ep, msg):
        calls.append(msg.payload["uniquifier"])
        return {}

    def run():
        serving = server._proc
        server.restart()                       # already serving: no-op
        assert server._proc is serving
        server.stop("crash")
        server.restart()
        restarted = server._proc
        server.restart()                       # second restart: no-op
        assert server._proc is restarted
        yield from client.call("server", "do", timeout=2.0)
        return len(calls)

    assert sim.run_process(run()) == 1         # exactly one serve loop answered


def test_stop_interrupts_inflight_handlers():
    """Fail-fast: a crash mid-handler kills the work — the side effect
    after the yield never happens and no reply is ever sent."""
    sim, _net, server, client = setup_pair()
    completed = []

    @server.on("slow")
    def slow(_ep, _msg):
        yield Timeout(2.0)
        completed.append(1)
        return {}

    def run():
        try:
            yield from client.call("server", "slow", timeout=10.0, retries=0)
        except Exception:
            pass

    def crasher():
        yield Timeout(1.0)
        assert server.inflight_handlers == 1
        server.stop("dead")
        assert server.inflight_handlers == 0

    sim.spawn(crasher())
    sim.spawn(run())
    sim.run(until=20.0)
    assert completed == []


def test_cast_fire_and_forget():
    sim, _net, server, client = setup_pair()
    seen = []

    @server.on("note")
    def note(_ep, msg):
        seen.append(msg.payload["text"])
        return {}

    client.cast("server", "note", {"text": "hello"})
    sim.run(until=1.0)
    assert seen == ["hello"]


def test_fresh_uniquifiers_unique():
    ids = {fresh_uniquifier() for _ in range(100)}
    assert len(ids) == 100
