"""The content-derived uniquifier (§2.1)."""

from repro.net import Endpoint, Network
from repro.net.rpc import content_uniquifier
from repro.sim import Simulator


def test_same_request_same_identity():
    a = content_uniquifier("WRITE", {"key": "x", "value": 1})
    b = content_uniquifier("WRITE", {"value": 1, "key": "x"})  # key order
    assert a == b


def test_different_requests_differ():
    a = content_uniquifier("WRITE", {"key": "x", "value": 1})
    b = content_uniquifier("WRITE", {"key": "x", "value": 2})
    c = content_uniquifier("READ", {"key": "x", "value": 1})
    assert len({a, b, c}) == 3


def test_rebuilt_request_dedups_at_server():
    """A client that forgot it already asked rebuilds the identical
    request; the derived identity still collapses the work."""
    sim = Simulator()
    net = Network(sim)
    server = Endpoint(net, "server", dedup=True)
    client = Endpoint(net, "client")
    server.start()
    client.start()
    runs = []

    @server.on("order")
    def order(_ep, msg):
        runs.append(msg.payload["sku"])
        return {"ok": True}

    def story():
        request = {"sku": "book", "qty": 1}
        uniq = content_uniquifier("order", request)
        yield from client.call("server", "order", {**request, "uniquifier": uniq})
        # Amnesiac retry: a fresh dict, same content, same derived id.
        rebuilt = {"qty": 1, "sku": "book"}
        yield from client.call(
            "server", "order",
            {**rebuilt, "uniquifier": content_uniquifier("order", rebuilt)},
        )

    sim.run_process(story())
    assert runs == ["book"]
