"""Sites, WAN links, site-pair faults, and the bandwidth pipe."""

import pytest

from repro.errors import SimulationError
from repro.net import (
    FixedLatency,
    LinkConfig,
    Message,
    Site,
    SiteFault,
    Topology,
    TopologyNetwork,
    WanLink,
)
from repro.sim import Simulator


def build(seed=0, bandwidth=None, wan=0.1):
    sim = Simulator(seed=seed)
    lan = FixedLatency(0.001)
    topology = Topology(
        [Site("a", lan=lan), Site("b", lan=lan)],
        default_wan=WanLink(FixedLatency(wan), bandwidth=bandwidth),
    )
    net = TopologyNetwork(
        sim, topology, default_link=LinkConfig(latency=lan)
    )
    for name in ("a1", "a2", "b1"):
        net.attach(name)
    topology.place_all(("a1", "a2"), "a")
    topology.place("b1", "b")
    return sim, topology, net


def test_site_and_wanlink_validation():
    with pytest.raises(SimulationError):
        Site("")
    with pytest.raises(SimulationError):
        WanLink(FixedLatency(0.1), bandwidth=0.0)
    with pytest.raises(SimulationError):
        WanLink(FixedLatency(0.1), message_cost=-1.0)
    with pytest.raises(SimulationError):
        Topology([Site("a"), Site("a")])
    with pytest.raises(SimulationError):
        Topology([])
    topology = Topology([Site("a"), Site("b")])
    with pytest.raises(SimulationError):
        topology.set_wan("a", "a", WanLink(FixedLatency(0.1)))
    with pytest.raises(SimulationError):
        topology.wan("a", "b")  # no default, no explicit link


def test_site_pairs_sorted_unordered():
    topology = Topology([Site(n) for n in ("c", "a", "b")])
    assert topology.site_pairs() == [("a", "b"), ("a", "c"), ("b", "c")]


def test_unplaced_endpoints_ride_the_flat_link():
    sim, _topology, net = build()
    net.attach("stranger")
    net.send(Message("stranger", "a1", "ping"))
    sim.run()
    assert sim.now == 0.001  # default link, no WAN charge
    assert "net.wan_msgs" not in sim.metrics.counters()


def test_cut_sites_drops_cross_site_only_and_heals():
    sim, _topology, net = build()
    boxes = {n: net._mailboxes[n] for n in ("a2", "b1")}
    faults = net.cut_sites("a", "b")
    net.send(Message("a1", "a2", "lan"))
    net.send(Message("a1", "b1", "wan"))
    sim.run()
    assert len(boxes["a2"]) == 1
    assert len(boxes["b1"]) == 0
    net.heal_sites(faults)
    net.send(Message("a1", "b1", "wan"))
    sim.run()
    assert len(boxes["b1"]) == 1


def test_site_fault_wildcards():
    sim, topology, net = build()
    # src_site=None: everything INTO site b is cut, regardless of origin.
    fault = SiteFault(loss_probability=1.0, topology=topology, dst_site="b")
    net.inject_fault(fault)
    net.send(Message("a1", "b1", "in"))
    net.send(Message("b1", "a1", "out"))
    sim.run()
    assert len(net._mailboxes["b1"]) == 0
    assert len(net._mailboxes["a1"]) == 1


def test_site_faults_identity_equality():
    """Two identical cuts must be distinct fault tokens: clearing one
    must not clear the other."""
    sim, topology, net = build()
    f1 = SiteFault(loss_probability=1.0, topology=topology, dst_site="b")
    f2 = SiteFault(loss_probability=1.0, topology=topology, dst_site="b")
    assert f1 != f2
    net.inject_fault(f1)
    net.inject_fault(f2)
    net.clear_fault(f1)
    net.send(Message("a1", "b1", "ping"))
    sim.run()
    assert len(net._mailboxes["b1"]) == 0  # f2 still standing


def test_bandwidth_pipe_is_per_direction():
    sim, _topology, net = build(bandwidth=10.0, wan=0.5)
    for _ in range(3):
        net.send(Message("a1", "b1", "east-out"))
        net.send(Message("b1", "a1", "west-out"))
    sim.run()
    # Each direction has its own pipe: 3 transmissions of 0.1s, not 6.
    assert sim.now == pytest.approx(0.5 + 3 * 0.1)
    assert sim.metrics.counter("net.wan_msgs").value == 6


def test_wan_queue_wait_observed():
    sim, _topology, net = build(bandwidth=2.0, wan=0.1)
    net.send(Message("a1", "b1", "first"))
    net.send(Message("a1", "b1", "second"))
    sim.run()
    # Second message queued 0.5s behind the first transmission.
    hist = sim.metrics.histogram("net.wan_queue_wait")
    assert hist.count == 1
