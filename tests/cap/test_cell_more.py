"""CAP cell: additional behaviours."""

from repro.cap import CapCell, Stance


def test_cp_quorum_side_reads_during_partition():
    cell = CapCell(Stance.CP, quorum_site="west")
    cell.increment("east", 5.0, "u1", at=1.0)
    cell.partition()
    assert cell.read("west") == 5.0
    assert cell.read("east") is None


def test_lww_snapshot_read_vs_ops_read():
    """Connected, the LWW snapshot equals the op-sum; the stances only
    diverge in how they merge after a partition."""
    lww = CapCell(Stance.AP_LWW)
    ops = CapCell(Stance.AP_OPS)
    for index in range(5):
        lww.increment("east", 2.0, f"u{index}", at=float(index))
        ops.increment("east", 2.0, f"u{index}", at=float(index))
    assert lww.read("west") == ops.read("west") == 10.0


def test_lww_tie_breaks_deterministically():
    cell = CapCell(Stance.AP_LWW)
    cell.partition()
    cell.increment("east", 1.0, "a", at=1.0)
    cell.increment("west", 2.0, "b", at=1.0)  # same stamp time, later uniq
    cell.heal()
    assert cell.consistent()
    # Exactly one side's update was kept; the other was recorded lost.
    assert len(cell.lost_updates) == 1


def test_refused_increment_not_in_accounting():
    cell = CapCell(Stance.CP, quorum_site="east")
    cell.partition()
    cell.increment("west", 99.0, "refused", at=1.0)
    cell.heal()
    assert cell.total_accepted_amount == 0.0
    assert cell.read("west") == 0.0


def test_second_partition_cycle():
    cell = CapCell(Stance.AP_OPS)
    cell.partition()
    cell.increment("east", 1.0, "first", at=1.0)
    cell.heal()
    cell.partition()
    cell.increment("west", 2.0, "second", at=2.0)
    cell.heal()
    assert cell.read("east") == cell.read("west") == 3.0
