"""CAP stances: pick two — and ACID 2.0 making the price small."""

import pytest

from repro.cap import CapCell, Stance
from repro.errors import SimulationError


def test_connected_all_stances_equivalent():
    for stance in Stance:
        cell = CapCell(stance)
        assert cell.increment("east", 5.0, "u1", at=1.0)
        assert cell.increment("west", 3.0, "u2", at=2.0)
        assert cell.read("east") == cell.read("west") == 8.0
        assert cell.consistent()


def test_duplicate_uniquifier_collapses():
    cell = CapCell(Stance.AP_OPS)
    cell.increment("east", 5.0, "u1", at=1.0)
    cell.increment("west", 5.0, "u1", at=1.5)  # retry landed elsewhere
    assert cell.read("east") == 5.0
    assert cell.total_accepted_amount == 5.0


def test_cp_minority_refuses_during_partition():
    cell = CapCell(Stance.CP, quorum_site="east")
    cell.partition()
    assert cell.increment("east", 1.0, "u1", at=1.0)   # quorum side serves
    assert not cell.increment("west", 1.0, "u2", at=1.0)
    assert cell.read("west") is None
    assert cell.refused == 2
    cell.heal()
    assert cell.read("west") == 1.0  # consistent once reconnected
    assert cell.lost_updates == []


def test_ap_lww_available_but_loses_minority_updates():
    cell = CapCell(Stance.AP_LWW)
    cell.partition()
    assert cell.increment("east", 1.0, "e1", at=1.0)
    assert cell.increment("west", 10.0, "w1", at=2.0)  # later stamp: west wins
    cell.heal()
    assert cell.lost_updates == ["e1"]
    assert cell.read("east") == cell.read("west") == 10.0
    assert cell.refused == 0


def test_ap_ops_available_and_lossless():
    cell = CapCell(Stance.AP_OPS)
    cell.partition()
    for i in range(5):
        assert cell.increment("east", 1.0, f"e{i}", at=float(i))
        assert cell.increment("west", 1.0, f"w{i}", at=float(i) + 0.5)
    cell.heal()
    assert cell.read("east") == cell.read("west") == 10.0
    assert cell.lost_updates == []
    assert cell.refused == 0
    assert cell.read("east") == cell.total_accepted_amount


def test_heal_idempotent():
    cell = CapCell(Stance.AP_OPS)
    cell.heal()  # no partition: no-op
    cell.partition()
    cell.increment("east", 1.0, "u1", at=1.0)
    cell.heal()
    cell.heal()
    assert cell.read("west") == 1.0


def test_consistency_check_during_partition():
    cell = CapCell(Stance.AP_OPS)
    cell.partition()
    cell.increment("east", 1.0, "u1", at=1.0)
    assert not cell.consistent()  # east says 1, west says 0
    cell.heal()
    assert cell.consistent()


def test_bad_site_rejected():
    cell = CapCell(Stance.CP)
    with pytest.raises(SimulationError):
        cell.increment("north", 1.0, "u1")
    with pytest.raises(SimulationError):
        CapCell(Stance.CP, quorum_site="north")
