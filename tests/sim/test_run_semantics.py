"""The ``run(until=..., max_steps=...)`` clock contract.

Previously, when ``max_steps`` tripped with events still pending at or
before ``until``, the clock was advanced to ``until`` anyway — a later
``run()`` would then execute those events "in the past" relative to
``now``. The contract now is: ``now`` reaches ``until`` only once every
event at or before ``until`` has executed.
"""

from repro.errors import SimulationError
from repro.sim import Simulator

import pytest


def test_max_steps_trip_does_not_jump_clock_to_until():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.schedule(t, seen.append, t)
    sim.run(until=10.0, max_steps=2)
    assert seen == [1.0, 2.0]
    # Events at 3.0 and 4.0 are still due before until=10.0; the clock
    # must not have skipped past them.
    assert sim.now == 2.0


def test_resume_after_trip_finishes_in_order_and_lands_on_until():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.schedule(t, seen.append, t)
    sim.run(until=10.0, max_steps=2)
    sim.run(until=10.0)
    assert seen == [1.0, 2.0, 3.0, 4.0]
    assert sim.now == 10.0


def test_until_reached_when_pending_work_is_beyond_it():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1.0)
    sim.schedule(20.0, seen.append, 20.0)
    sim.run(until=10.0, max_steps=100)
    assert seen == [1.0]
    assert sim.now == 10.0  # nothing due in (1, 10] — bound is the clock


def test_max_steps_trip_mid_timestamp_preserves_tie_order():
    """Interrupting inside a same-time batch and resuming must not
    reorder the remaining ties (heap leftovers vs. newly-laned work)."""
    sim = Simulator()
    order = []

    def spawner(tag):
        order.append(tag)
        sim.schedule(0.0, order.append, f"{tag}.child")

    for tag in ("a", "b", "c"):
        sim.schedule(1.0, spawner, tag)
    sim.run(max_steps=2)  # runs "a", then one of the time-1.0 ties
    assert order == ["a", "b"]
    assert sim.now == 1.0
    sim.run()
    assert order == ["a", "b", "c", "a.child", "b.child", "c.child"]


def test_zero_delay_work_blocks_clock_advance():
    """A tripped run with zero-delay work still queued keeps now put."""
    sim = Simulator()
    seen = []

    def fan_out():
        for k in range(5):
            sim.schedule(0.0, seen.append, k)

    sim.schedule(1.0, fan_out)
    sim.run(until=9.0, max_steps=3)
    assert sim.now == 1.0  # laned work at t=1.0 remains
    sim.run(until=9.0)
    assert seen == [0, 1, 2, 3, 4]
    assert sim.now == 9.0


def test_run_is_not_reentrant():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_with_past_until_is_a_noop():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    assert sim.run(until=1.0) == 5.0
    assert sim.now == 5.0


def test_steps_counts_executed_callbacks():
    sim = Simulator()
    for t in (0.0, 0.0, 1.0, 2.0):
        sim.schedule(t, lambda: None)
    sim.run(max_steps=3)
    assert sim.steps == 3
    sim.run()
    assert sim.steps == 4
