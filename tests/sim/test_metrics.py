"""Metrics: counters, histograms, time series."""

import math

from repro.sim import Simulator
from repro.sim.metrics import Histogram, TimeSeries


def test_counter_inc_and_reset():
    sim = Simulator()
    counter = sim.metrics.counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    counter.reset()
    assert counter.value == 0.0


def test_counter_shorthand():
    sim = Simulator()
    sim.metrics.inc("hits")
    sim.metrics.inc("hits", 4)
    assert sim.metrics.counter("hits").value == 5


def test_histogram_summary_stats():
    hist = Histogram("h")
    for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
        hist.observe(v)
    assert hist.count == 5
    assert hist.mean == 3.0
    assert hist.minimum == 1.0
    assert hist.maximum == 5.0
    assert hist.percentile(50) == 3.0
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 5.0


def test_histogram_percentile_interpolates():
    hist = Histogram("h")
    hist.observe(0.0)
    hist.observe(10.0)
    assert hist.percentile(50) == 5.0


def test_histogram_empty_is_nan():
    hist = Histogram("h")
    assert math.isnan(hist.mean)
    assert math.isnan(hist.percentile(50))


def test_histogram_stdev():
    hist = Histogram("h")
    for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        hist.observe(v)
    assert abs(hist.stdev - 2.138) < 0.01


def test_histogram_single_value_stdev_zero():
    hist = Histogram("h")
    hist.observe(3.0)
    assert hist.stdev == 0.0


def test_observe_shorthand():
    sim = Simulator()
    sim.metrics.observe("lat", 1.0)
    sim.metrics.observe("lat", 3.0)
    assert sim.metrics.histogram("lat").mean == 2.0


def test_timeseries_time_weighted_mean():
    series = TimeSeries("depth")
    series.record(0.0, 0.0)
    series.record(5.0, 10.0)
    series.record(10.0, 0.0)
    # 0 for [0,5), 10 for [5,10) -> mean 5 over [0,10]
    assert series.time_weighted_mean(end_time=10.0) == 5.0


def test_timeseries_sample_uses_sim_clock():
    sim = Simulator()
    sim.schedule(4.0, sim.metrics.sample, "q", 2.0)
    sim.run()
    assert sim.metrics.series("q").samples == [(4.0, 2.0)]


def test_counters_snapshot_sorted():
    sim = Simulator()
    sim.metrics.inc("b")
    sim.metrics.inc("a")
    assert list(sim.metrics.counters()) == ["a", "b"]
