"""Kernel odds and ends: reentrancy, event misuse, value access."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Timeout


def test_run_is_not_reentrant():
    sim = Simulator()
    failures = []

    def naughty():
        try:
            sim.run()
        except SimulationError as exc:
            failures.append(str(exc))

    sim.schedule(1.0, naughty)
    sim.run()
    assert failures and "reentrant" in failures[0]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event("once")
    event.trigger(1)
    with pytest.raises(SimulationError):
        event.trigger(2)
    with pytest.raises(SimulationError):
        event.fail(ValueError("late"))


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    event = sim.event("pending")
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_value_after_failure_raises_the_exception():
    sim = Simulator()
    event = sim.event("bad").fail(KeyError("k"))
    assert not event.ok
    with pytest.raises(KeyError):
        _ = event.value


def test_fail_requires_an_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event("x").fail("not an exception")  # type: ignore[arg-type]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-0.5)


def test_callback_added_after_trigger_runs_immediately():
    sim = Simulator()
    event = sim.event("done").trigger("v")
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_processes_named_uniquely_by_default():
    sim = Simulator()

    def idle():
        yield Timeout(0.1)

    names = {sim.spawn(idle()).name for _ in range(5)}
    assert len(names) == 5
    sim.run()
