"""Composite waits: failures, mixed members, interrupts mid-wait."""

from repro.errors import InterruptError, SimulationError
from repro.sim import AllOf, AnyOf, Simulator, Timeout


def test_anyof_failure_propagates():
    sim = Simulator()
    bad = sim.event("bad")
    slow = sim.timeout_event(10.0)

    def fail_soon():
        yield Timeout(1.0)
        bad.fail(ValueError("boom"))

    def racer():
        try:
            yield AnyOf([bad, slow])
        except ValueError:
            return "saw failure"

    sim.spawn(fail_soon())
    assert sim.run_process(racer()) == "saw failure"


def test_allof_failure_propagates_without_waiting_for_rest():
    sim = Simulator()
    bad = sim.event("bad")
    slow = sim.timeout_event(100.0)

    def fail_soon():
        yield Timeout(1.0)
        bad.fail(RuntimeError("x"))

    def gatherer():
        try:
            yield AllOf([bad, slow])
        except RuntimeError:
            return sim.now

    sim.spawn(fail_soon())
    # AllOf settles each member; the failure surfaces when all are done
    # OR immediately on the failing one completing the wait set — our
    # semantics: failure is reported when the wait finishes.
    result = sim.run_process(gatherer())
    assert result in (1.0, 100.0)


def test_anyof_mixes_events_and_processes():
    sim = Simulator()

    def quick():
        yield Timeout(1.0)
        return "done"

    proc = sim.spawn(quick())
    slow = sim.timeout_event(50.0)

    def racer():
        results = yield AnyOf([proc, slow])
        return list(results.values())

    assert sim.run_process(racer()) == ["done"]


def test_anyof_rejects_garbage_member():
    sim = Simulator()

    def racer():
        yield AnyOf(["not waitable"])

    proc = sim.spawn(racer())
    sim.run()
    assert isinstance(proc.done.exception, SimulationError)


def test_interrupt_while_waiting_on_anyof():
    sim = Simulator()
    never = sim.event("never")

    def waiter():
        try:
            yield AnyOf([never])
        except InterruptError:
            return "interrupted"

    proc = sim.spawn(waiter())
    sim.schedule(2.0, proc.interrupt)
    sim.run()
    assert proc.done.value == "interrupted"
    # Late trigger of the abandoned event must not resurrect the process.
    never.trigger("late")
    sim.run()
    assert proc.done.value == "interrupted"


def test_anyof_both_settle_same_instant():
    sim = Simulator()
    first = sim.timeout_event(5.0, value="a")
    second = sim.timeout_event(5.0, value="b")

    def racer():
        results = yield AnyOf([first, second])
        return sorted(v for v in results.values())

    # Only the members settled at resume time are reported; at minimum one.
    values = sim.run_process(racer())
    assert values in (["a"], ["a", "b"])
