"""Process semantics: effects, completion, failure, interrupts."""

import pytest

from repro.errors import InterruptError, SimulationError
from repro.sim import AllOf, AnyOf, Simulator, Timeout


def test_timeout_advances_clock():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield Timeout(5.0)
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0.0, 5.0]


def test_timeout_resumes_with_value():
    sim = Simulator()

    def proc():
        got = yield Timeout(1.0, value="hello")
        return got

    assert sim.run_process(proc()) == "hello"


def test_wait_on_event_gets_value():
    sim = Simulator()
    event = sim.event("e")

    def trigger_later():
        yield Timeout(2.0)
        event.trigger(99)

    def waiter():
        value = yield event
        return value

    sim.spawn(trigger_later())
    assert sim.run_process(waiter()) == 99


def test_wait_on_already_triggered_event():
    sim = Simulator()
    event = sim.event("e").trigger("ready")

    def waiter():
        value = yield event
        return value

    assert sim.run_process(waiter()) == "ready"


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    event = sim.event("e")

    def fail_later():
        yield Timeout(1.0)
        event.fail(ValueError("boom"))

    def waiter():
        try:
            yield event
        except ValueError as exc:
            return f"caught {exc}"

    sim.spawn(fail_later())
    assert sim.run_process(waiter()) == "caught boom"


def test_wait_on_process_returns_its_value():
    sim = Simulator()

    def child():
        yield Timeout(3.0)
        return "child-result"

    def parent():
        proc = sim.spawn(child())
        result = yield proc
        return result

    assert sim.run_process(parent()) == "child-result"


def test_process_exception_fails_done_event():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("died")

    proc = sim.spawn(bad())
    sim.run()
    assert proc.done.triggered
    assert isinstance(proc.done.exception, RuntimeError)


def test_child_failure_propagates_to_waiting_parent():
    sim = Simulator()

    def child():
        yield Timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield sim.spawn(child())
        except RuntimeError:
            return "saw failure"

    assert sim.run_process(parent()) == "saw failure"


def test_interrupt_throws_into_process():
    sim = Simulator()

    def victim():
        try:
            yield Timeout(100.0)
        except InterruptError as exc:
            return ("interrupted", exc.cause, sim.now)

    proc = sim.spawn(victim())
    sim.schedule(5.0, proc.interrupt, "crash")
    sim.run()
    assert proc.done.value == ("interrupted", "crash", 5.0)


def test_interrupt_cancels_stale_timeout():
    """After an interrupt, the old timeout must not resume the process."""
    sim = Simulator()
    resumed = []

    def victim():
        try:
            yield Timeout(10.0)
            resumed.append("timeout fired")
        except InterruptError:
            yield Timeout(100.0)
            resumed.append("slept after interrupt")

    proc = sim.spawn(victim())
    sim.schedule(1.0, proc.interrupt)
    sim.run()
    assert resumed == ["slept after interrupt"]
    assert proc.done.triggered


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield Timeout(1.0)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt()  # must not raise
    sim.run()


def test_anyof_resumes_on_first():
    sim = Simulator()
    fast = sim.timeout_event(1.0, value="fast")
    slow = sim.timeout_event(10.0, value="slow")

    def racer():
        results = yield AnyOf([fast, slow])
        return results

    results = sim.run_process(racer())
    assert results == {fast: "fast"}
    assert sim.now >= 1.0


def test_allof_waits_for_all():
    sim = Simulator()
    first = sim.timeout_event(1.0, value="a")
    second = sim.timeout_event(5.0, value="b")

    def gatherer():
        results = yield AllOf([first, second])
        return results

    results = sim.run_process(gatherer())
    assert results == {first: "a", second: "b"}
    assert sim.now == 5.0


def test_allof_empty_resumes_immediately():
    sim = Simulator()

    def proc():
        results = yield AllOf([])
        return results

    assert sim.run_process(proc()) == {}


def test_yield_garbage_fails_process():
    sim = Simulator()

    def bad():
        yield "not an effect"

    proc = sim.spawn(bad())
    sim.run()
    assert isinstance(proc.done.exception, SimulationError)


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_alive_flag():
    sim = Simulator()

    def proc():
        yield Timeout(5.0)

    p = sim.spawn(proc())
    assert p.alive
    sim.run()
    assert not p.alive
