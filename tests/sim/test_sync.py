"""Mailbox / Resource / Lock semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import Lock, Mailbox, Resource, Simulator, Timeout


def test_mailbox_put_then_get():
    sim = Simulator()
    box = Mailbox(sim)
    box.put("a")

    def getter():
        item = yield box.get()
        return item

    assert sim.run_process(getter()) == "a"


def test_mailbox_get_blocks_until_put():
    sim = Simulator()
    box = Mailbox(sim)

    def producer():
        yield Timeout(3.0)
        box.put("late")

    def consumer():
        item = yield box.get()
        return (item, sim.now)

    sim.spawn(producer())
    assert sim.run_process(consumer()) == ("late", 3.0)


def test_mailbox_fifo_order():
    sim = Simulator()
    box = Mailbox(sim)
    for item in (1, 2, 3):
        box.put(item)

    def consumer():
        got = []
        for _ in range(3):
            got.append((yield box.get()))
        return got

    assert sim.run_process(consumer()) == [1, 2, 3]


def test_mailbox_waiters_served_in_order():
    sim = Simulator()
    box = Mailbox(sim)
    results = []

    def consumer(tag):
        item = yield box.get()
        results.append((tag, item))

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))
    sim.schedule(1.0, box.put, "x")
    sim.schedule(2.0, box.put, "y")
    sim.run()
    assert results == [("first", "x"), ("second", "y")]


def test_mailbox_try_get_and_len():
    sim = Simulator()
    box = Mailbox(sim)
    assert box.try_get() is None
    box.put(7)
    assert len(box) == 1
    assert box.try_get() == 7
    assert len(box) == 0


def test_mailbox_drain():
    sim = Simulator()
    box = Mailbox(sim)
    box.put(1)
    box.put(2)
    assert box.drain() == [1, 2]
    assert len(box) == 0


def test_mailbox_fail_waiters():
    sim = Simulator()
    box = Mailbox(sim)

    def consumer():
        try:
            yield box.get()
        except RuntimeError:
            return "failed"

    proc = sim.spawn(consumer())
    sim.schedule(1.0, box.fail_waiters, RuntimeError("crash"))
    sim.run()
    assert proc.done.value == "failed"


def test_resource_serializes_beyond_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    spans = []

    def worker(tag):
        yield resource.acquire()
        start = sim.now
        yield Timeout(10.0)
        resource.release()
        spans.append((tag, start, sim.now))

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    assert spans == [("a", 0.0, 10.0), ("b", 10.0, 20.0)]


def test_resource_capacity_two_runs_in_parallel():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    done_times = []

    def worker():
        yield resource.acquire()
        yield Timeout(10.0)
        resource.release()
        done_times.append(sim.now)

    for _ in range(2):
        sim.spawn(worker())
    sim.run()
    assert done_times == [10.0, 10.0]


def test_resource_release_idle_rejected():
    sim = Simulator()
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_queue_depth():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def holder():
        yield resource.acquire()
        yield Timeout(5.0)
        resource.release()

    def waiter():
        yield resource.acquire()
        resource.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run(until=1.0)
    assert resource.queue_depth == 1
    sim.run()
    assert resource.queue_depth == 0


def test_lock_locked_property():
    sim = Simulator()
    lock = Lock(sim)

    def holder():
        yield lock.acquire()
        assert lock.locked
        yield Timeout(1.0)
        lock.release()

    sim.spawn(holder())
    sim.run()
    assert not lock.locked


def test_resource_using_releases_on_error():
    sim = Simulator()
    resource = Resource(sim)

    def body():
        yield Timeout(1.0)
        raise ValueError("inner failure")

    def worker():
        try:
            yield from resource.using(body())
        except ValueError:
            pass
        return resource.in_use

    assert sim.run_process(worker()) == 0
