"""Kernel event-loop behaviour: ordering, clock, run bounds."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(5.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(7.5, seen.append, "x")
    sim.run()
    assert seen == ["x"]
    assert sim.now == 7.5


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_inclusive_of_boundary():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "boundary")
    sim.run(until=5.0)
    assert seen == ["boundary"]


def test_max_steps_bound():
    sim = Simulator()
    count = []
    for i in range(10):
        sim.schedule(float(i), count.append, i)
    sim.run(max_steps=4)
    assert count == [0, 1, 2, 3]


def test_nested_schedule_from_callback():
    sim = Simulator()
    seen = []

    def outer():
        seen.append(("outer", sim.now))
        sim.schedule(2.0, inner)

    def inner():
        seen.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert seen == [("outer", 1.0), ("inner", 3.0)]


def test_timeout_event_self_triggers():
    sim = Simulator()
    event = sim.timeout_event(4.0, value="ping")
    sim.run()
    assert event.triggered and event.value == "ping"


def test_run_process_returns_value():
    sim = Simulator()

    def worker():
        yield Timeout(2.0)
        return 42

    assert sim.run_process(worker()) == 42
    assert sim.now == 2.0


def test_run_process_raises_on_deadlock():
    sim = Simulator()

    def stuck():
        yield sim.event("never")

    with pytest.raises(SimulationError):
        sim.run_process(stuck())


def test_pending_count():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_count == 2
