"""Trace log filtering and capacity."""

from repro.sim import Simulator


def test_emit_records_time_and_payload():
    sim = Simulator()
    sim.schedule(2.0, sim.trace.emit, "node-1", "write")
    sim.run()
    records = sim.trace.find(kind="write")
    assert len(records) == 1
    assert records[0].time == 2.0
    assert records[0].actor == "node-1"


def test_filters():
    sim = Simulator()
    sim.trace.emit("a", "x", n=1)
    sim.trace.emit("b", "x", n=2)
    sim.trace.emit("a", "y", n=3)
    assert sim.trace.count(kind="x") == 2
    assert sim.trace.count(actor="a") == 2
    assert len(sim.trace.find(kind="x", actor="a")) == 1
    heavy = sim.trace.find(predicate=lambda r: r.payload.get("n", 0) > 1)
    assert [r.payload["n"] for r in heavy] == [2, 3]


def test_disabled_trace_records_nothing():
    sim = Simulator()
    sim.trace.enabled = False
    sim.trace.emit("a", "x")
    assert sim.trace.count() == 0


def test_capacity_bounds_records():
    sim = Simulator(trace_capacity=3)
    for i in range(10):
        sim.trace.emit("a", "tick", i=i)
    assert sim.trace.count() == 3
    assert [r.payload["i"] for r in sim.trace.find()] == [7, 8, 9]


def test_clear():
    sim = Simulator()
    sim.trace.emit("a", "x")
    sim.trace.clear()
    assert sim.trace.count() == 0


def test_eviction_is_counted_not_silent():
    sim = Simulator(trace_capacity=3)
    for i in range(10):
        sim.trace.emit("a", "tick", i=i)
    assert sim.trace.dropped == 7
    assert sim.trace.count() == 3


def test_dropped_stays_zero_within_capacity():
    sim = Simulator(trace_capacity=5)
    for i in range(5):
        sim.trace.emit("a", "tick", i=i)
    assert sim.trace.dropped == 0

    unbounded = Simulator(trace_capacity=None)
    for i in range(100):
        unbounded.trace.emit("a", "tick", i=i)
    assert unbounded.trace.dropped == 0


def test_disabled_emits_do_not_count_as_dropped():
    sim = Simulator(trace_capacity=2)
    sim.trace.enabled = False
    for i in range(10):
        sim.trace.emit("a", "tick", i=i)
    assert sim.trace.dropped == 0


def test_clear_resets_dropped():
    sim = Simulator(trace_capacity=2)
    for i in range(5):
        sim.trace.emit("a", "tick", i=i)
    assert sim.trace.dropped == 3
    sim.trace.clear()
    assert sim.trace.dropped == 0
    assert sim.trace.count() == 0


def test_tail_returns_most_recent_records():
    sim = Simulator()
    for i in range(5):
        sim.trace.emit("a", "tick", i=i)
    assert [r.payload["i"] for r in sim.trace.tail(2)] == [3, 4]
    assert len(sim.trace.tail(100)) == 5
    assert sim.trace.tail(0) == []
