"""RNG streams: determinism and stream independence."""

from repro.sim import RngRegistry, Simulator


def test_same_seed_same_sequence():
    a = RngRegistry(42).stream("x")
    b = RngRegistry(42).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x")
    b = RngRegistry(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_streams_are_independent():
    registry = RngRegistry(42)
    first_of_y_before = RngRegistry(42).stream("y").random()
    # Consuming from "x" must not perturb "y".
    registry.stream("x").random()
    registry.stream("x").random()
    assert registry.stream("y").random() == first_of_y_before


def test_stream_cached():
    registry = RngRegistry(0)
    assert registry.stream("a") is registry.stream("a")


def test_callable_shorthand():
    registry = RngRegistry(0)
    assert registry("a") is registry.stream("a")


def test_simulator_owns_registry():
    sim = Simulator(seed=7)
    assert sim.rng.master_seed == 7
    value = sim.rng.uniform(0.0, 1.0, stream="test")
    assert 0.0 <= value <= 1.0


def test_expovariate_positive():
    registry = RngRegistry(3)
    for _ in range(100):
        assert registry.expovariate(2.0) >= 0.0


def test_choice():
    registry = RngRegistry(3)
    assert registry.choice([1, 2, 3]) in (1, 2, 3)
