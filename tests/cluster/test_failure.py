"""Failure injection plans and random schedules."""

import pytest

from repro.cluster import CrashPlan, FailureInjector, Membership, Node
from repro.errors import SimulationError
from repro.sim import Simulator


def make_cluster(names, seed=0):
    sim = Simulator(seed=seed)
    nodes = {name: Node(sim, name) for name in names}
    return sim, nodes


def test_crash_plan_executes():
    sim, nodes = make_cluster(["a"])
    FailureInjector(sim, nodes).install([CrashPlan("a", at=5.0, back_at=8.0)])
    sim.run(until=6.0)
    assert not nodes["a"].up
    sim.run(until=9.0)
    assert nodes["a"].up


def test_crash_plan_without_restart():
    sim, nodes = make_cluster(["a"])
    FailureInjector(sim, nodes).install([CrashPlan("a", at=5.0)])
    sim.run()
    assert not nodes["a"].up


def test_bad_plan_rejected():
    with pytest.raises(SimulationError):
        CrashPlan("a", at=5.0, back_at=5.0)


def test_unknown_node_rejected():
    sim, nodes = make_cluster(["a"])
    injector = FailureInjector(sim, nodes)
    with pytest.raises(SimulationError):
        injector.install([CrashPlan("ghost", at=1.0)])


def test_random_schedule_crashes_and_restarts():
    sim, nodes = make_cluster(["a"], seed=11)
    FailureInjector(sim, nodes).install_random("a", mttf=10.0, mttr=2.0)
    sim.run(until=200.0)
    assert nodes["a"].crash_count >= 5


def test_random_schedule_deterministic_under_seed():
    counts = []
    for _ in range(2):
        sim, nodes = make_cluster(["a"], seed=11)
        FailureInjector(sim, nodes).install_random("a", mttf=10.0, mttr=2.0)
        sim.run(until=100.0)
        counts.append(nodes["a"].crash_count)
    assert counts[0] == counts[1]


def test_random_schedule_validates_params():
    sim, nodes = make_cluster(["a"])
    injector = FailureInjector(sim, nodes)
    with pytest.raises(SimulationError):
        injector.install_random("a", mttf=0.0, mttr=1.0)


def test_membership_tracks_liveness():
    sim, nodes = make_cluster(["a", "b", "c"])
    membership = Membership(nodes)
    assert membership.alive() == ["a", "b", "c"]
    nodes["b"].crash()
    assert membership.alive() == ["a", "c"]
    assert not membership.is_alive("b")
    nodes["b"].restart()
    assert membership.is_alive("b")


def test_membership_add_duplicate_rejected():
    sim, nodes = make_cluster(["a"])
    membership = Membership(nodes)
    with pytest.raises(SimulationError):
        membership.add(nodes["a"])


def test_membership_unknown_node_rejected():
    sim, nodes = make_cluster(["a"])
    membership = Membership(nodes)
    with pytest.raises(SimulationError):
        membership.node("ghost")
