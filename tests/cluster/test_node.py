"""Node crash/restart semantics."""

import pytest

from repro.errors import CrashedError, InterruptError
from repro.cluster import Node
from repro.net import Network
from repro.sim import Simulator, Timeout


def test_crash_interrupts_owned_processes():
    sim = Simulator()
    node = Node(sim, "n1")
    fates = []

    def worker():
        try:
            yield Timeout(100.0)
            fates.append("finished")
        except InterruptError:
            fates.append("interrupted")

    node.spawn(worker())
    sim.schedule(5.0, node.crash)
    sim.run()
    assert fates == ["interrupted"]
    assert not node.up
    assert node.crash_count == 1


def test_crash_hooks_run():
    sim = Simulator()
    node = Node(sim, "n1")
    calls = []
    node.on_crash(lambda: calls.append("crash"))
    node.on_restart(lambda: calls.append("restart"))
    node.crash()
    node.restart()
    assert calls == ["crash", "restart"]


def test_crash_idempotent():
    sim = Simulator()
    node = Node(sim, "n1")
    node.crash()
    node.crash()
    assert node.crash_count == 1


def test_restart_when_up_is_noop():
    sim = Simulator()
    node = Node(sim, "n1")
    calls = []
    node.on_restart(lambda: calls.append("restart"))
    node.restart()
    assert calls == []


def test_spawn_on_down_node_rejected():
    sim = Simulator()
    node = Node(sim, "n1")
    node.crash()

    def worker():
        yield Timeout(1.0)

    with pytest.raises(CrashedError):
        node.spawn(worker())


def test_endpoint_stops_and_restarts_with_node():
    sim = Simulator()
    net = Network(sim)
    node = Node(sim, "server")
    endpoint = node.attach_endpoint(net)

    @endpoint.on("ping")
    def ping(_ep, _msg):
        return {"pong": True}

    client = Node(sim, "client").attach_endpoint(net)

    def run():
        first = yield from client.call("server", "ping")
        node.crash()
        try:
            yield from client.call("server", "ping", timeout=0.3, retries=1)
            second = "answered"
        except Exception:
            second = "unreachable"
        node.restart()
        third = yield from client.call("server", "ping", timeout=2.0)
        return (first["pong"], second, third["pong"])

    assert sim.run_process(run()) == (True, "unreachable", True)


def test_processes_list_cleared_on_crash():
    sim = Simulator()
    node = Node(sim, "n1")

    def worker():
        yield Timeout(100.0)

    node.spawn(worker())
    node.crash()
    node.restart()
    assert node._processes == []
