"""The generic §2 abstraction: idempotent steps + checkpoint cadences."""

import pytest

from repro.cluster import CheckpointCadence, PairedAlgorithm
from repro.errors import SimulationError
from repro.net import Network
from repro.sim import Simulator


def counting_step(state, step_index):
    """Idempotent by construction: set-based accumulation."""
    return {"done": sorted(set(state["done"]) | {step_index})}


def make_pair(sim=None, cadence=CheckpointCadence.EVERY_STEP, **kwargs):
    sim = sim or Simulator(seed=1)
    network = Network(sim)
    pair = PairedAlgorithm(
        sim, network,
        step=counting_step,
        total_steps=kwargs.pop("total_steps", 10),
        initial_state={"done": []},
        cadence=cadence,
        **kwargs,
    )
    return sim, pair


def test_validation():
    sim = Simulator()
    network = Network(sim)
    with pytest.raises(SimulationError):
        PairedAlgorithm(sim, network, counting_step, 0, {})
    with pytest.raises(SimulationError):
        PairedAlgorithm(sim, network, counting_step, 5, {}, batch_size=0)


def test_clean_run_completes_all_steps():
    sim, pair = make_pair()
    result = sim.run_process(pair.run())
    assert result.final_state["done"] == list(range(10))
    assert result.steps_executed == 10
    assert result.steps_redone == 0
    assert result.takeovers == 0


def test_every_step_cadence_checkpoints_each_step():
    sim, pair = make_pair(cadence=CheckpointCadence.EVERY_STEP)
    result = sim.run_process(pair.run())
    # One per step plus the final commit checkpoint.
    assert result.checkpoints_sent == 11


def test_batched_cadence_sends_fewer_checkpoints():
    sim, pair = make_pair(cadence=CheckpointCadence.EVERY_N, batch_size=5)
    result = sim.run_process(pair.run())
    assert result.checkpoints_sent < 11
    assert result.final_state["done"] == list(range(10))


def test_crash_with_sync_checkpointing_redoes_nothing():
    """EVERY_STEP: the backup already has the state through the crashed
    step's predecessor... in fact through the step itself only if the
    checkpoint happened; the crash fires before it, so exactly that one
    step is redone."""
    sim, pair = make_pair(cadence=CheckpointCadence.EVERY_STEP)
    pair.crash_primary_at_step(5)
    result = sim.run_process(pair.run())
    assert result.takeovers == 1
    assert result.final_state["done"] == list(range(10))
    assert result.steps_redone == 1  # only step 5 (its checkpoint was lost)


def test_crash_with_batched_checkpointing_redoes_the_batch_tail():
    sim, pair = make_pair(cadence=CheckpointCadence.EVERY_N, batch_size=5,
                          total_steps=10)
    pair.crash_primary_at_step(8)  # last checkpoint covered steps 0..4
    result = sim.run_process(pair.run())
    assert result.takeovers == 1
    assert result.final_state["done"] == list(range(10))
    assert result.steps_redone == 4  # steps 5,6,7,8 redone


def test_crash_with_async_checkpointing_redoes_the_window():
    sim, pair = make_pair(cadence=CheckpointCadence.ASYNC, async_period=0.05,
                          step_duration=0.01, total_steps=10)
    pair.crash_primary_at_step(9)
    result = sim.run_process(pair.run())
    assert result.takeovers == 1
    assert result.final_state["done"] == list(range(10))
    assert result.steps_redone >= 1  # the un-checkpointed tail


def test_idempotence_makes_redone_work_harmless():
    """The final state is identical with and without a crash — the §2.4
    point: exactly-once in effect, at-least-once in execution."""
    sim_clean, clean = make_pair(cadence=CheckpointCadence.EVERY_N, batch_size=3)
    clean_result = sim_clean.run_process(clean.run())
    sim_crash, crashed = make_pair(cadence=CheckpointCadence.EVERY_N, batch_size=3)
    crashed.crash_primary_at_step(7)
    crash_result = sim_crash.run_process(crashed.run())
    assert clean_result.final_state == crash_result.final_state
    assert crash_result.steps_executed > clean_result.steps_executed


def test_sync_cadence_slower_than_batched():
    sim_sync, sync_pair = make_pair(cadence=CheckpointCadence.EVERY_STEP,
                                    total_steps=20)
    sim_sync.run_process(sync_pair.run())
    sync_time = sim_sync.now
    sim_batch, batch_pair = make_pair(cadence=CheckpointCadence.EVERY_N,
                                      batch_size=10, total_steps=20)
    sim_batch.run_process(batch_pair.run())
    assert sim_batch.now < sync_time
