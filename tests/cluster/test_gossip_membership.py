"""Gossip membership: the merge rule's algebra, refutation, suspicion
timers, delta budgets, and epidemic convergence over the real fabric —
including the gossip-to-the-dead heal after a symmetric partition."""

import itertools

import pytest

from repro.cluster.gossip_membership import (
    ALIVE,
    DEAD,
    LEFT,
    SUSPECT,
    MembershipGossip,
    MembershipView,
    rumor_wins,
    views_converged,
)
from repro.errors import SimulationError
from repro.net.latency import FixedLatency
from repro.net.network import LinkConfig, Network
from repro.sim import Simulator


def make_fabric(seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, default_link=LinkConfig(latency=FixedLatency(0.002)))
    return sim, network


def make_cluster(sim, network, names, period=0.25, fanout=2, timeout=1.0,
                 **kwargs):
    views, gossips = {}, {}
    for name in names:
        view = MembershipView(name, sim, suspicion_timeout=timeout)
        view.seed(names)
        views[name] = view
        gossips[name] = MembershipGossip(
            view, network=network, period=period, fanout=fanout, **kwargs
        )
    return views, gossips


# ----------------------------------------------------------------------
# The merge rule


def test_higher_incarnation_always_wins():
    assert rumor_wins(ALIVE, 2, DEAD, 1)       # even a graver held status
    assert rumor_wins(SUSPECT, 3, ALIVE, 2)
    assert not rumor_wins(DEAD, 1, ALIVE, 2)   # stale gravity loses


def test_equal_incarnation_graver_status_wins():
    assert rumor_wins(SUSPECT, 1, ALIVE, 1)
    assert rumor_wins(DEAD, 1, SUSPECT, 1)
    assert rumor_wins(LEFT, 1, DEAD, 1)        # left outranks even dead
    assert not rumor_wins(ALIVE, 1, SUSPECT, 1)
    assert not rumor_wins(ALIVE, 0, ALIVE, 0)  # identical rumor is a no-op


def test_unknown_status_is_rejected():
    with pytest.raises(SimulationError):
        rumor_wins("zombie", 1, ALIVE, 0)
    sim = Simulator(seed=0)
    view = MembershipView("a", sim)
    with pytest.raises(SimulationError):
        view.apply("b", "zombie", 0)
    with pytest.raises(SimulationError):
        view.apply("b", ALIVE, -1)


def test_merge_is_order_independent_and_idempotent():
    """Any permutation of any rumor batch, applied any number of times,
    lands every view on the same entries — the property that lets rumors
    arrive late, twice, or out of order."""
    rumors = [
        ("b", ALIVE, 0), ("b", SUSPECT, 0), ("b", ALIVE, 1),
        ("c", DEAD, 2), ("c", ALIVE, 2), ("d", LEFT, 0), ("d", ALIVE, 0),
    ]
    outcomes = set()
    for perm in itertools.permutations(rumors):
        view = MembershipView("a", Simulator(seed=0))
        for rumor in perm:
            view.apply(*rumor)
        for rumor in perm:           # replay the whole batch: no change
            assert not view.apply(*rumor)
        outcomes.add(tuple(sorted(view.entries().items())))
    assert len(outcomes) == 1
    entries = dict(outcomes.pop())
    assert entries["b"] == (ALIVE, 1)     # the refreshed incarnation won
    assert entries["c"] == (DEAD, 2)      # graver status at equal inc
    assert entries["d"] == (LEFT, 0)      # left cannot be resurrected


def test_rumor_about_unknown_name_creates_the_entry():
    view = MembershipView("a", Simulator(seed=0))
    assert view.status_of("b") is None
    assert view.apply("b", ALIVE, 0)      # this is how a join spreads
    assert view.status_of("b") == ALIVE
    assert "b" in view.alive_names()


# ----------------------------------------------------------------------
# Refutation: the liveness apology


def test_self_accusation_triggers_incarnation_bump():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim)
    assert view.apply("a", SUSPECT, 0)
    assert view.status_of("a") == ALIVE           # never accepted
    assert view.incarnation_of("a") == 1          # outbid instead
    assert view.refutations == 1
    # A death verdict at the bumped incarnation is refuted again, higher.
    assert view.apply("a", DEAD, 1)
    assert view.status_of("a") == ALIVE
    assert view.incarnation_of("a") == 2
    assert view.refutations == 2


def test_stale_accusation_is_ignored_not_refuted():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim)
    view.apply("a", SUSPECT, 0)                   # refutes to inc 1
    assert not view.apply("a", SUSPECT, 0)        # already outranked
    assert view.incarnation_of("a") == 1
    assert view.refutations == 1


def test_refutation_outranks_the_accusation_in_other_views():
    sim = Simulator(seed=0)
    accuser = MembershipView("b", sim)
    accuser.seed(["a", "b"])
    accuser.suspect("a")
    owner = MembershipView("a", sim)
    owner.seed(["a", "b"])
    # The accusation travels to the owner; the refutation travels back.
    owner.merge_wire(accuser.snapshot())
    accuser.merge_wire(owner.snapshot())
    assert accuser.status_of("a") == ALIVE
    assert accuser.incarnation_of("a") == 1


# ----------------------------------------------------------------------
# Suspicion timers


def test_unrefuted_suspicion_expires_to_dead():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim, suspicion_timeout=1.0)
    view.seed(["a", "b"])
    view.suspect("b")
    sim.run(until=0.9)
    assert view.status_of("b") == SUSPECT
    sim.run(until=1.1)
    assert view.status_of("b") == DEAD
    assert sim.metrics.counters()["membership.dead_declared"] == 1


def test_cleared_suspicion_cancels_the_expiry():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim, suspicion_timeout=1.0)
    view.seed(["a", "b"])
    view.suspect("b")
    sim.run(until=0.5)
    assert view.clear_suspicion("b")
    assert view.status_of("b") == ALIVE
    assert view.incarnation_of("b") == 1      # advanced past the suspicion
    sim.run(until=2.0)                        # the stale timer fires inert
    assert view.status_of("b") == ALIVE


def test_superseding_rumor_cancels_the_expiry():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim, suspicion_timeout=1.0)
    view.seed(["a", "b"])
    view.suspect("b")
    view.apply("b", ALIVE, 1)                 # the refutation arrives
    sim.run(until=2.0)
    assert view.status_of("b") == ALIVE


def test_a_view_never_suspects_its_owner():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim)
    assert not view.suspect("a")
    assert view.status_of("a") == ALIVE


def test_clear_suspicion_needs_something_to_clear():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim)
    view.seed(["a", "b"])
    assert not view.clear_suspicion("b")      # alive already
    assert not view.clear_suspicion("ghost")  # unknown


# ----------------------------------------------------------------------
# Dissemination budgets


def test_deltas_decrement_budget_until_exhausted():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim, retransmit_mult=3.0)
    view.seed(["a", "b"])
    assert view.deltas() == []                # seeding spreads nothing
    view.apply("c", ALIVE, 0)
    budget = 0
    while view.deltas():
        budget += 1
        assert budget < 100
    assert budget >= 3                        # the floor
    assert view.deltas() == []                # spent


def test_delta_limit_caps_the_piggyback():
    sim = Simulator(seed=0)
    view = MembershipView("a", sim)
    for i in range(10):
        view.apply(f"m{i}", ALIVE, 0)
    batch = view.deltas(limit=4)
    assert len(batch) == 4


# ----------------------------------------------------------------------
# Epidemic convergence over the fabric


def test_join_rumor_reaches_every_view():
    """A late joiner seeded with one introducer becomes alive in every
    view through rumor alone — no broadcast, no registry."""
    sim, network = make_fabric(seed=1)
    names = [f"m{i}" for i in range(8)]
    views, gossips = make_cluster(sim, network, names)
    for gossip in gossips.values():
        gossip.run(until=10.0)
    sim.run(until=1.0)
    newcomer = MembershipView("newcomer", sim, suspicion_timeout=1.0)
    newcomer.seed(["m0"])
    joiner = MembershipGossip(
        newcomer, network=network, period=0.25, fanout=2
    )
    joiner.run(until=10.0)
    sim.run(until=10.0)
    assert all(v.status_of("newcomer") == ALIVE for v in views.values())
    assert views_converged(list(views.values()) + [newcomer])


def test_full_sync_heals_a_view_with_spent_budgets():
    """Anti-entropy backstop: even after every delta budget is spent, a
    forced full exchange reconciles an aged view."""
    sim, network = make_fabric(seed=2)
    names = ["m0", "m1"]
    views, gossips = make_cluster(sim, network, names)
    views["m0"].apply("newcomer", ALIVE, 0)
    while views["m0"].deltas():
        pass                                  # burn the budget dry
    sim.run_process(gossips["m0"].round_once(force_full=True))
    assert views["m1"].status_of("newcomer") == ALIVE


def test_failed_probe_suspects_the_peer():
    sim, network = make_fabric(seed=3)
    names = ["m0", "m1"]
    views, gossips = make_cluster(
        sim, network, names, fanout=1, timeout=5.0
    )
    gossips["m1"].endpoint.stop("crashed")
    sim.spawn(gossips["m0"].round_once(), name="probe")
    sim.run(until=2.0)   # the probe has failed; the expiry is far off
    assert views["m0"].status_of("m1") == SUSPECT
    assert gossips["m0"].rounds_failed == 1
    sim.run()            # drain: the unrefuted suspicion hardens
    assert views["m0"].status_of("m1") == DEAD


def test_gossip_to_the_dead_reconverges_after_symmetric_partition():
    """The death-spiral regression: both sides of a partition that
    outlives the suspicion timeout hold the other dead. If rounds only
    ever target usable peers, neither side ever speaks across the healed
    divide — full-sync rounds must gossip at the believed-dead too."""
    sim, network = make_fabric(seed=4)
    names = [f"m{i}" for i in range(4)]
    views, gossips = make_cluster(
        sim, network, names, period=0.25, timeout=0.5
    )
    for gossip in gossips.values():
        gossip.run(until=30.0)
    sim.run(until=1.0)
    network.partition([{"m0", "m1"}, {"m2", "m3"}])
    sim.run(until=8.0)   # far past the suspicion timeout: verdicts harden
    assert views["m0"].status_of("m2") == DEAD
    assert views["m2"].status_of("m0") == DEAD
    network.heal()
    sim.run(until=30.0)
    assert views_converged(list(views.values()))
    for view in views.values():
        assert all(view.status_of(name) == ALIVE for name in names)


def test_left_member_is_not_gossiped_at():
    sim, network = make_fabric(seed=5)
    names = ["m0", "m1", "m2"]
    views, gossips = make_cluster(sim, network, names)
    views["m0"].leave("m2")
    assert "m2" not in views["m0"].member_names()
    assert views["m0"].status_of("m2") == LEFT
    # A same-incarnation alive rumor cannot resurrect the departed.
    assert not views["m0"].apply("m2", ALIVE, 0)
    # A genuine rejoin at a higher incarnation can.
    assert views["m0"].apply("m2", ALIVE, 1)


def test_desperate_round_falls_back_to_believed_dead_peers():
    """A view where everyone looks dead still gossips at someone —
    otherwise it could never hear a refutation."""
    sim, network = make_fabric(seed=6)
    names = ["m0", "m1"]
    views, gossips = make_cluster(sim, network, names, timeout=0.5)
    views["m0"].suspect("m1")
    sim.run(until=1.0)
    assert views["m0"].status_of("m1") == DEAD
    accepted = sim.run_process(gossips["m0"].round_once())
    # The believed-dead peer answered: its snapshot restores it to life
    # via the pull half of push-pull (m1 learns it was suspected and the
    # exchange carries fresher state back).
    assert views["m0"].is_usable("m1") or accepted >= 0


def test_views_converged_helper():
    sim = Simulator(seed=0)
    a = MembershipView("a", sim)
    b = MembershipView("b", sim)
    a.seed(["a", "b"])
    b.seed(["a", "b"])
    assert views_converged([a, b])
    assert views_converged([])
    a.suspect("b")
    assert not views_converged([a, b])


# ----------------------------------------------------------------------
# Determinism and validation


def test_gossip_is_deterministic():
    def run_once():
        sim, network = make_fabric(seed=7)
        names = [f"m{i}" for i in range(5)]
        views, gossips = make_cluster(sim, network, names)
        for gossip in gossips.values():
            gossip.run(until=6.0)
        sim.run(until=1.0)
        network.partition([{"m0"}, {"m1", "m2", "m3", "m4"}])
        sim.run(until=4.0)
        network.heal()
        sim.run(until=6.0)
        return (
            sim.metrics.counters(),
            {n: sorted(v.entries().items()) for n, v in views.items()},
        )

    assert run_once() == run_once()


def test_bad_parameters_rejected():
    sim, network = make_fabric()
    view = MembershipView("a", sim)
    with pytest.raises(SimulationError):
        MembershipView("a", sim, suspicion_timeout=0.0)
    with pytest.raises(SimulationError):
        MembershipGossip(view)                      # no endpoint, no network
    with pytest.raises(SimulationError):
        MembershipGossip(view, network=network, fanout=0)
    with pytest.raises(SimulationError):
        MembershipGossip(view, network=network, period=0.0)
    with pytest.raises(SimulationError):
        MembershipGossip(view, network=network, full_sync_every=0)
