"""Dynamic membership: registry truth, detector overrides, and the live
view the dynamo ring walks."""

import pytest

from repro.cluster import Membership, Node
from repro.dynamo.ring import HashRing
from repro.errors import SimulationError
from repro.failover import FixedTimeoutDetector
from repro.sim import Simulator


def make_nodes(names):
    sim = Simulator(seed=0)
    return sim, {name: Node(sim, name) for name in names}


def test_node_backed_members_report_registry_truth():
    sim, nodes = make_nodes(["a", "b", "c"])
    membership = Membership(nodes)
    assert membership.alive() == ["a", "b", "c"]
    nodes["b"].crash()
    assert membership.alive() == ["a", "c"]
    nodes["b"].restart()
    assert membership.alive() == ["a", "b", "c"]


def test_overrides_shadow_registry_truth():
    sim, nodes = make_nodes(["a", "b"])
    membership = Membership(nodes)
    membership.mark_down("a")             # believed dead, actually up
    assert not membership.is_alive("a")
    assert membership.alive() == ["b"]
    membership.mark_up("a")               # belief cleared: truth again
    assert membership.is_alive("a")
    nodes["a"].crash()
    assert not membership.is_alive("a")   # truth now says down


def test_name_only_members_default_up():
    membership = Membership.of_names(["x", "y"])
    assert membership.alive() == ["x", "y"]
    membership.mark_down("y")
    assert membership.alive() == ["x"]
    membership.mark_up("y")
    assert membership.alive() == ["x", "y"]


def test_add_remove_and_errors():
    sim, nodes = make_nodes(["a"])
    membership = Membership(nodes)
    membership.add_name("b")
    assert membership.all_names() == ["a", "b"]
    assert len(membership) == 2
    with pytest.raises(SimulationError):
        membership.add(nodes["a"])        # duplicate
    membership.add_name("b")              # idempotent: re-adding is a no-op
    assert membership.all_names() == ["a", "b"]
    membership.add_name("a")              # and never sheds a backing node
    assert membership.node("a") is nodes["a"]
    membership.remove("b")
    assert membership.all_names() == ["a"]
    assert not membership.is_alive("b")   # gone means not alive
    with pytest.raises(SimulationError):
        membership.remove("b")
    with pytest.raises(SimulationError):
        membership.mark_down("nobody")
    with pytest.raises(SimulationError):
        membership.mark_up("nobody")
    with pytest.raises(SimulationError):
        membership.node("b")              # no backing node


def test_remove_clears_override():
    membership = Membership.of_names(["x"])
    membership.mark_down("x")
    membership.remove("x")
    membership.add_name("x")
    assert membership.is_alive("x")       # fresh member, fresh belief


def test_iteration_yields_backing_nodes_only():
    sim, nodes = make_nodes(["a", "b"])
    membership = Membership(nodes)
    membership.add_name("ghost")
    assert sorted(n.name for n in membership) == ["a", "b"]
    assert membership.node("a") is nodes["a"]


def test_live_view_drives_preference_list():
    membership = Membership.of_names(["n0", "n1", "n2", "n3", "n4"])
    ring = HashRing(membership.all_names(), vnodes=8)
    key = "cart-42"
    intended = ring.preference_list(key, 3)
    membership.mark_down(intended[0])     # the coordinator is believed dead
    walked = ring.preference_list(key, 3, alive=membership.live_view())
    assert intended[0] not in walked
    assert len(walked) == 3               # the walk kept going past it


def test_detector_binding_marks_down_and_back_up():
    sim = Simulator(seed=0)
    membership = Membership.of_names(["n1", "n2"])
    detector = FixedTimeoutDetector(sim, ["n1", "n2"], timeout=0.5)
    detector.bind_membership(membership)
    detector.heartbeat("n1")
    detector.heartbeat("n2")
    detector.start(poll_interval=0.1)
    for i in range(1, 6):                 # n2 keeps talking; n1 goes silent
        sim.schedule_at(0.2 * i, detector.heartbeat, "n2")
    sim.run(until=1.0)
    detector.stop()
    assert membership.alive() == ["n2"]
    # The "corpse" speaks: the contradiction marks it back up.
    detector.heartbeat("n1")
    assert membership.alive() == ["n1", "n2"]
