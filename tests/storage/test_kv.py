"""PageStore: durable puts, volatile staging, sync, crash."""

from repro.sim import Simulator
from repro.storage import PageStore


def test_put_get_roundtrip():
    sim = Simulator()
    store = PageStore(sim)

    def run():
        yield from store.put("k", "v")
        value = yield from store.get("k")
        return value

    assert sim.run_process(run()) == "v"


def test_volatile_put_visible_before_sync():
    sim = Simulator()
    store = PageStore(sim)
    store.put_volatile("k", "staged")

    def run():
        value = yield from store.get("k")
        return value

    assert sim.run_process(run()) == "staged"
    assert store.staged_count == 1


def test_staged_page_shadows_durable():
    sim = Simulator()
    store = PageStore(sim)

    def run():
        yield from store.put("k", "old")
        store.put_volatile("k", "new")
        value = yield from store.get("k")
        return value

    assert sim.run_process(run()) == "new"


def test_sync_makes_staged_durable():
    sim = Simulator()
    store = PageStore(sim)
    store.put_volatile("a", 1)
    store.put_volatile("b", 2)

    def run():
        count = yield from store.sync()
        return count

    assert sim.run_process(run()) == 2
    assert store.staged_count == 0
    assert store.disk.peek("a") == 1


def test_crash_loses_staged_only():
    sim = Simulator()
    store = PageStore(sim)

    def run():
        yield from store.put("durable", 1)

    sim.run_process(run())
    store.put_volatile("volatile", 2)
    lost = store.crash()
    assert lost == {"volatile": 2}
    assert store.peek("durable") == 1
    assert store.peek("volatile") is None


def test_keys_union_staged_and_durable():
    sim = Simulator()
    store = PageStore(sim)

    def run():
        yield from store.put("a", 1)

    sim.run_process(run())
    store.put_volatile("b", 2)
    store.put_volatile("a", 10)
    assert sorted(store.keys()) == ["a", "b"]


def test_sync_empty_returns_zero():
    sim = Simulator()
    store = PageStore(sim)

    def run():
        count = yield from store.sync()
        return count

    assert sim.run_process(run()) == 0
