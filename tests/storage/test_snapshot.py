"""Snapshot layer: atomic cuts, incremental chains, tail recovery."""

import pytest

from repro.errors import CrashedError, SimulationError
from repro.sim import Simulator
from repro.sim.events import Timeout
from repro.storage import (
    Disk,
    SnapshotStore,
    Snapshotter,
    WriteAheadLog,
    apply_txn_record,
    recover,
)


def make_stack(seed=0, max_chain=8):
    sim = Simulator(seed=seed)
    wal = WriteAheadLog(sim, Disk(sim, name="log"))
    store = SnapshotStore(sim, Disk(sim, name="snapdisk"), max_chain=max_chain)
    return sim, wal, store


def commit(wal, txn_id, **writes):
    """Append a WRITE-per-key + COMMIT transaction to the WAL buffer."""
    for key, value in writes.items():
        wal.append("WRITE", txn_id=txn_id, key=key, value=value)
    wal.append("COMMIT", txn_id=txn_id)


def replay_all(wal):
    """Straight-line replay of the whole durable log (the slow baseline)."""
    state, staged, applied = {}, {}, set()
    for r in wal.durable_records():
        apply_txn_record(state, staged, applied, r.kind, r.txn_id, r.payload)
    return state


# ----------------------------------------------------------------------
# apply_txn_record discipline


def test_write_stages_commit_applies():
    state, staged, applied = {}, {}, set()
    assert apply_txn_record(state, staged, applied, "WRITE", 1, {"key": "a", "value": 1}) is None
    assert state == {}
    writes = apply_txn_record(state, staged, applied, "COMMIT", 1, {})
    assert writes == {"a": 1}
    assert state == {"a": 1}
    assert applied == {1}


def test_replay_is_idempotent_by_txn():
    state, staged, applied = {}, {}, set()
    for _ in range(2):
        apply_txn_record(state, staged, applied, "WRITE", 1, {"key": "a", "value": 1})
        apply_txn_record(state, staged, applied, "COMMIT", 1, {})
    apply_txn_record(state, staged, applied, "WRITE", 1, {"key": "a", "value": 99})
    assert state == {"a": 1}  # second pass and late WRITE are no-ops


def test_unknown_kinds_ignored():
    state, staged, applied = {}, {}, set()
    assert apply_txn_record(state, staged, applied, "NOOP", None, {}) is None
    assert (state, staged) == ({}, {})


# ----------------------------------------------------------------------
# SnapshotStore chains


def test_first_snapshot_is_full():
    sim, _wal, store = make_stack()

    def run():
        record = yield from store.install({"a": 1, "b": 2}, lsn=5)
        return record

    record = sim.run_process(run())
    assert record.base_id is None
    assert record.delta == {"a": 1, "b": 2}
    assert store.latest_lsn == 5


def test_incremental_delta_and_removals():
    sim, _wal, store = make_stack()

    def run():
        yield from store.install({"a": 1, "b": 2}, lsn=5)
        record = yield from store.install({"a": 1, "b": 3, "c": 4}, lsn=9)
        return record

    record = sim.run_process(run())
    assert record.base_id is not None
    assert record.delta == {"b": 3, "c": 4}  # unchanged "a" not rewritten

    def run2():
        record = yield from store.install({"b": 3}, lsn=12)
        return record

    record2 = sim.run_process(run2())
    assert record2.removed == ("a", "c")
    snap = store.peek_materialize()
    assert snap.state == {"b": 3}
    assert snap.lsn == 12
    assert snap.chain_length == 3


def test_chain_compacts_past_max():
    sim, _wal, store = make_stack(max_chain=3)

    def run():
        for i in range(1, 6):
            yield from store.install({"k": i}, lsn=i)

    sim.run_process(run())
    snap = store.peek_materialize()
    assert snap.state == {"k": 5}
    # installs 1..3 chain, 4 compacts to full, 5 chains onto it
    assert snap.chain_length == 2
    assert sim.metrics.counters()["snapshot.snap.compactions"] == 1


def test_lsn_regression_rejected():
    sim, _wal, store = make_stack()

    def run():
        yield from store.install({"a": 1}, lsn=5)
        yield from store.install({"a": 2}, lsn=4)

    with pytest.raises(SimulationError):
        sim.run_process(run())


def test_failed_install_leaves_prior_chain_intact():
    sim, _wal, store = make_stack()

    def run():
        yield from store.install({"a": 1}, lsn=5)
        store.disk.fail()
        try:
            yield from store.install({"a": 2}, lsn=9)
        except CrashedError:
            pass
        store.disk.repair()

    sim.run_process(run())
    snap = store.peek_materialize()
    assert snap.state == {"a": 1}
    assert snap.lsn == 5


# ----------------------------------------------------------------------
# Snapshotter: the asynchronous cut


def test_cut_is_atomic_but_write_is_timed():
    sim, wal, store = make_stack()
    live = {}

    def capture():
        return dict(live), {}

    snapper = Snapshotter(sim, wal, capture, store, cadence=1.0)

    def run():
        commit(wal, "t1", a=1)
        yield from wal.flush()
        live["a"] = 1
        before = sim.now
        record = yield from snapper.take()
        assert sim.now > before  # the install cost sim time...
        return record

    record = sim.run_process(run())
    assert record.lsn == wal.durable_lsn  # ...but the cut saw the pre-write LSN
    assert record.delta == {"a": 1}


def test_writes_continue_during_capture():
    """Appends racing the snapshot land in the next tail, not the snapshot."""
    sim, wal, store = make_stack()
    live = {}

    def capture():
        return dict(live), {}

    snapper = Snapshotter(sim, wal, capture, store, cadence=1.0)

    def writer():
        for i in range(10):
            commit(wal, f"w{i}", k=i)
            yield from wal.flush()
            live["k"] = i
            yield Timeout(0.003)

    def run():
        sim.spawn(writer(), name="writer")
        yield Timeout(0.01)
        record = yield from snapper.take()
        yield Timeout(1.0)
        return record

    record = sim.run_process(run())
    assert record.lsn <= wal.durable_lsn
    assert wal.last_lsn > record.lsn  # writes kept flowing past the cut


def test_snapshotter_loop_takes_periodic_snapshots():
    sim, wal, store = make_stack()
    live = {}

    def capture():
        return dict(live), {}

    snapper = Snapshotter(sim, wal, capture, store, cadence=0.5)
    snapper.start(until=2.5)

    def run():
        for i in range(4):
            commit(wal, f"t{i}", x=i)
            yield from wal.flush()
            live["x"] = i
            snapper.mark_dirty()
            yield Timeout(0.6)
        yield Timeout(1.0)

    sim.run_process(run())
    snapper.stop()
    assert sim.metrics.counters()["snapshot.snap.installed"] >= 3
    assert store.peek_materialize().state == {"x": 3}


def test_idle_snapshotter_drains():
    """An idle loop parks on the dirty event — the sim's heap drains
    (no snapshot-every-cadence-forever polling)."""
    sim, wal, store = make_stack()
    snapper = Snapshotter(sim, wal, lambda: ({}, {}), store, cadence=0.5)
    snapper.start()
    sim.run()  # returns: nothing marked dirty, so nothing is scheduled
    assert sim.metrics.counters().get("snapshot.snap.installed", 0) == 0


def test_bad_cadence_rejected():
    sim, wal, store = make_stack()
    with pytest.raises(SimulationError):
        Snapshotter(sim, wal, lambda: ({}, {}), store, cadence=0.0)


# ----------------------------------------------------------------------
# recover(): snapshot + tail


def test_recover_without_snapshot_is_full_replay():
    sim, wal, store = make_stack()

    def run():
        commit(wal, "t1", a=1)
        commit(wal, "t2", b=2)
        yield from wal.flush()
        result = yield from recover(store, wal)
        return result

    result = sim.run_process(run())
    assert result.snapshot_lsn == 0
    assert result.replayed_records == 4
    assert result.state == {"a": 1, "b": 2}


def test_recover_replays_only_the_tail():
    sim, wal, store = make_stack()
    live = {}

    def capture():
        return dict(live), {}

    snapper = Snapshotter(sim, wal, capture, store, cadence=1.0)

    def run():
        for i in range(20):
            commit(wal, f"t{i}", k=i)
        yield from wal.flush()
        live["k"] = 19
        yield from snapper.take()
        commit(wal, "tail1", k=20, extra="x")
        commit(wal, "tail2", k=21)
        yield from wal.flush()
        result = yield from recover(store, wal)
        return result

    result = sim.run_process(run())
    assert result.snapshot_lsn == 40  # 20 txns × 2 records
    assert result.replayed_records == 5  # only the two tail txns
    assert result.replayed_txns == 2
    assert result.state == replay_all(wal)


def test_recover_matches_straight_line_replay_with_inflight_txn():
    """A txn split by the cut (WRITE before, COMMIT after) must survive:
    the snapshot meta carries the staged writes across."""
    sim, wal, store = make_stack()
    state, staged, applied = {}, {}, set()

    def apply_live(record):
        apply_txn_record(state, staged, applied, record.kind, record.txn_id, record.payload)

    def capture():
        return dict(state), {
            "staged": {t: dict(w) for t, w in staged.items()},
            "applied_txns": list(applied),
        }

    snapper = Snapshotter(sim, wal, capture, store, cadence=1.0)

    def run():
        apply_live(wal.append("WRITE", txn_id="t1", key="a", value=1))
        apply_live(wal.append("COMMIT", txn_id="t1"))
        apply_live(wal.append("WRITE", txn_id="t2", key="b", value=2))  # in flight
        yield from wal.flush()
        yield from snapper.take()
        apply_live(wal.append("COMMIT", txn_id="t2"))  # commits past the cut
        yield from wal.flush()
        result = yield from recover(store, wal)
        return result

    result = sim.run_process(run())
    assert result.state == {"a": 1, "b": 2}
    assert result.state == replay_all(wal)


def test_recover_twice_is_idempotent():
    sim, wal, store = make_stack()

    def run():
        commit(wal, "t1", a=1)
        yield from wal.flush()
        first = yield from recover(store, wal)
        second = yield from recover(store, wal)
        return first, second

    first, second = sim.run_process(run())
    assert first.state == second.state
    assert first.recovered_lsn == second.recovered_lsn


def test_recovery_io_scales_with_tail_not_log(monkeypatch):
    """The acceptance criterion in miniature: double the log, keep the
    tail, and recovery reads the same number of blocks."""
    costs = []
    for total_txns in (50, 100):
        sim, wal, store = make_stack()
        live = {}

        def run():
            for i in range(total_txns):
                commit(wal, f"t{i}", k=i)
            yield from wal.flush()
            live["k"] = total_txns - 1
            snapper = Snapshotter(sim, wal, lambda: (dict(live), {}), store, cadence=1.0)
            yield from snapper.take()
            commit(wal, "tail", k="last")
            yield from wal.flush()
            before = sim.metrics.counters().get("disk.log.blocks_read", 0)
            result = yield from recover(store, wal)
            after = sim.metrics.counters()["disk.log.blocks_read"]
            return result.replayed_records, after - before

        replayed, blocks = sim.run_process(run())
        assert replayed == 2
        costs.append(blocks)
    assert costs[0] == costs[1]  # log doubled, recovery IO did not


# ----------------------------------------------------------------------
# Chain reconstruction + prune


def test_chains_reconstructed_from_disk_blocks():
    sim, _wal, store = make_stack(max_chain=3)

    def run():
        for i in range(1, 6):
            yield from store.install({"k": i}, lsn=i)

    sim.run_process(run())
    chains = store.chains()
    # installs 1..3 form the first chain; 4 compacts, 5 chains onto it
    assert [[r.snapshot_id for r in chain] for chain in chains] == [
        [1, 2, 3], [4, 5]
    ]
    assert all(chain[0].base_id is None for chain in chains)


def test_prune_deletes_only_retired_chains():
    sim, _wal, store = make_stack(max_chain=2)

    def run():
        for i in range(1, 8):
            yield from store.install({"k": i, f"x{i}": i}, lsn=i)

    sim.run_process(run())
    assert len(store.chains()) > 2
    before = store.peek_materialize()

    deleted = sim.run_process(store.prune(keep_chains=2))
    assert deleted > 0
    assert len(store.chains()) == 2
    # The survivors still materialize to exactly what was covered.
    after = store.peek_materialize()
    assert after.lsn == before.lsn
    assert after.state == before.state


def test_prune_never_drops_a_covered_lsn():
    """The acceptance property: whatever the compaction cadence, a prune
    after every install leaves the covered LSN and the materialized
    state exactly where they were."""
    for max_chain in (1, 2, 3):
        for keep_chains in (1, 2):
            sim, _wal, store = make_stack(max_chain=max_chain)
            state = {}
            for i in range(1, 11):
                state[f"k{i % 4}"] = i
                state.pop(f"k{(i + 2) % 4}", None)

                def run(snapshot=dict(state), lsn=i):
                    yield from store.install(snapshot, lsn=lsn)
                    return (yield from store.prune(keep_chains=keep_chains))

                sim.run_process(run())
                snap = store.peek_materialize()
                assert snap is not None, (max_chain, keep_chains, i)
                assert snap.lsn == i, (max_chain, keep_chains, i)
                assert snap.state == state, (max_chain, keep_chains, i)
            assert len(store.chains()) <= keep_chains


def test_prune_with_nothing_to_drop_is_a_noop():
    sim, _wal, store = make_stack(max_chain=4)

    def run():
        yield from store.install({"a": 1}, lsn=1)
        yield from store.install({"a": 2}, lsn=2)
        return (yield from store.prune(keep_chains=2))

    assert sim.run_process(run()) == 0
    assert len(store.chains()) == 1


def test_prune_must_keep_a_chain():
    sim, _wal, store = make_stack()
    with pytest.raises(SimulationError):
        sim.run_process(store.prune(keep_chains=0))


def test_pruned_store_recovers_identically():
    """Recovery after a prune sees the same state as before it: the live
    chain plus the WAL tail is untouched by the garbage collection."""
    sim, wal, store = make_stack(max_chain=2)

    def run():
        for i in range(1, 6):
            commit(wal, f"t{i}", k=i)
            yield from wal.flush()
            yield from store.install({"k": i}, lsn=wal.durable_lsn)
        commit(wal, "tail", extra=99)
        yield from wal.flush()
        result_before = yield from recover(store, wal)
        yield from store.prune(keep_chains=1)
        result_after = yield from recover(store, wal)
        return result_before, result_after

    before, after = sim.run_process(run())
    assert after.state == before.state
    assert after.snapshot_lsn == before.snapshot_lsn
    assert after.replayed_records == before.replayed_records


# ----------------------------------------------------------------------
# Automatic retention (Snapshotter keep_chains)


def test_snapshotter_prunes_retired_chains_per_checkpoint():
    """With ``keep_chains`` set, every checkpoint garbage-collects the
    superseded chains as it lands — disk stays bounded with no operator
    in the loop, and the live chain always materializes intact."""
    sim, wal, store = make_stack(max_chain=2)
    live = {}
    snapper = Snapshotter(
        sim, wal, lambda: (dict(live), {}), store,
        cadence=1.0, keep_chains=1,
    )

    def run():
        for i in range(1, 9):
            live[f"k{i}"] = i
            commit(wal, f"t{i}", **{f"k{i}": i})
            yield from wal.flush()
            yield from snapper.take()

    sim.run_process(run())
    # 8 installs at max_chain=2 would have left 4 chains on disk; the
    # per-checkpoint prune kept only the newest.
    assert len(store.chains()) == 1
    assert sim.metrics.counters()["snapshot.snap.pruned_blocks"] > 0
    snap = store.peek_materialize()
    assert snap.state == live
    assert snap.lsn == wal.durable_lsn


def test_snapshotter_without_retention_keeps_every_chain():
    sim, wal, store = make_stack(max_chain=2)
    live = {}
    snapper = Snapshotter(
        sim, wal, lambda: (dict(live), {}), store, cadence=1.0,
    )

    def run():
        for i in range(1, 9):
            live[f"k{i}"] = i
            commit(wal, f"t{i}", **{f"k{i}": i})
            yield from wal.flush()
            yield from snapper.take()

    sim.run_process(run())
    assert len(store.chains()) > 1  # retired chains linger until pruned


def test_snapshotter_retention_keeps_recovery_identical():
    """The retention must be invisible to recovery: a retained-1 store
    and an unpruned store recover the same state from the same history."""
    results = []
    for keep_chains in (None, 1):
        sim, wal, store = make_stack(max_chain=2)
        live = {}
        snapper = Snapshotter(
            sim, wal, lambda: (dict(live), {}), store,
            cadence=1.0, keep_chains=keep_chains,
        )

        def run():
            for i in range(1, 7):
                live[f"k{i % 3}"] = i
                commit(wal, f"t{i}", **{f"k{i % 3}": i})
                yield from wal.flush()
                yield from snapper.take()
            commit(wal, "tail", extra=99)
            yield from wal.flush()
            return (yield from recover(store, wal))

        results.append(sim.run_process(run()))
    unpruned, retained = results
    assert retained.state == unpruned.state
    assert retained.snapshot_lsn == unpruned.snapshot_lsn
    assert retained.replayed_records == unpruned.replayed_records


def test_bad_retention_rejected():
    sim, wal, store = make_stack()
    with pytest.raises(SimulationError):
        Snapshotter(
            sim, wal, lambda: ({}, {}), store, cadence=1.0, keep_chains=0
        )
