"""WAL: LSNs, flush horizon, crash loss, recovery reads."""

import pytest

from repro.errors import CrashedError, SimulationError
from repro.sim import Simulator
from repro.sim.events import Timeout
from repro.storage import Disk, WriteAheadLog


def make_wal(seed=0):
    sim = Simulator(seed=seed)
    wal = WriteAheadLog(sim, Disk(sim, name="log"))
    return sim, wal


def test_append_stamps_increasing_lsns():
    _sim, wal = make_wal()
    first = wal.append("WRITE", txn_id=1)
    second = wal.append("COMMIT", txn_id=1)
    assert (first.lsn, second.lsn) == (1, 2)
    assert wal.last_lsn == 2


def test_append_is_volatile_until_flush():
    _sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)
    assert wal.durable_lsn == 0
    assert wal.buffered_count == 1


def test_flush_advances_durable_lsn():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)
    wal.append("COMMIT", txn_id=1)

    def run():
        lsn = yield from wal.flush()
        return lsn

    assert sim.run_process(run()) == 2
    assert wal.durable_lsn == 2
    assert wal.buffered_count == 0


def test_flush_empty_is_noop():
    sim, wal = make_wal()

    def run():
        lsn = yield from wal.flush()
        return (lsn, sim.now)

    assert sim.run_process(run()) == (0, 0.0)


def test_lose_volatile_drops_only_the_tail():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    wal.append("WRITE", txn_id=2)
    lost = wal.lose_volatile()
    assert [r.txn_id for r in lost] == [2]
    assert wal.durable_lsn == 1
    assert [r.txn_id for r in wal.durable_records()] == [1]


def test_lsns_not_reused_after_loss():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)
    wal.lose_volatile()
    record = wal.append("WRITE", txn_id=2)
    assert record.lsn == 2  # LSN 1 was consumed by the lost record


def test_durable_records_in_lsn_order():
    sim, wal = make_wal()
    for i in range(5):
        wal.append("WRITE", txn_id=i)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    assert [r.lsn for r in wal.durable_records()] == [1, 2, 3, 4, 5]


def test_records_between_for_shipping_cursor():
    sim, wal = make_wal()
    for i in range(5):
        wal.append("WRITE", txn_id=i)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    shipped = wal.records_between(2, 4)
    assert [r.lsn for r in shipped] == [3, 4]


def test_records_between_beyond_durable_rejected():
    _sim, wal = make_wal()
    wal.append("WRITE")
    with pytest.raises(SimulationError):
        wal.records_between(0, 1)  # lsn 1 not durable yet


def test_flush_on_failed_disk_does_not_advance_durable_lsn():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)
    wal.disk.fail()

    def run():
        yield from wal.flush()

    with pytest.raises(CrashedError):
        sim.run_process(run())
    assert wal.durable_lsn == 0
    assert wal.buffered_count == 1  # the batch went back to the buffer


def test_slow_disk_fault_mid_batch_surfaces_failure():
    """Regression: a disk that dies while a slowdown has the batch
    stretched out in service must not let flush advance durable_lsn."""
    sim, wal = make_wal()
    for i in range(10):
        wal.append("WRITE", txn_id=i)
    wal.disk.set_slowdown(100.0)  # the batch is now in service for ~0.6s

    outcome = {}

    def flusher():
        try:
            yield from wal.flush()
            outcome["ok"] = True
        except CrashedError:
            outcome["crashed"] = True

    def saboteur():
        yield Timeout(0.1)  # mid-service
        wal.disk.fail()

    sim.spawn(flusher(), name="flusher")
    sim.spawn(saboteur(), name="saboteur")
    sim.run()
    assert outcome == {"crashed": True}
    assert wal.durable_lsn == 0
    assert len(wal.disk) == 0  # no half-written batch on the media
    assert sim.metrics.counters()["wal.wal.flush_failures"] == 1
    assert sim.metrics.counters()["disk.log.interrupted_requests"] == 1


def test_flush_retries_cleanly_after_repair():
    sim, wal = make_wal()
    for i in range(3):
        wal.append("WRITE", txn_id=i)
    wal.disk.fail()

    def run():
        try:
            yield from wal.flush()
        except CrashedError:
            pass
        wal.disk.repair()
        wal.append("WRITE", txn_id=3)
        yield from wal.flush()

    sim.run_process(run())
    # Same records, same order — nothing lost, nothing duplicated.
    assert [r.txn_id for r in wal.durable_records()] == [0, 1, 2, 3]
    assert wal.durable_lsn == 4


def test_record_payload_roundtrip():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=7, page="p1", value=42)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    record = wal.durable_records()[0]
    assert record.payload == {"page": "p1", "value": 42}
    assert record.txn_id == 7
