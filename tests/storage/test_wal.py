"""WAL: LSNs, flush horizon, crash loss, recovery reads."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.storage import Disk, WriteAheadLog


def make_wal(seed=0):
    sim = Simulator(seed=seed)
    wal = WriteAheadLog(sim, Disk(sim, name="log"))
    return sim, wal


def test_append_stamps_increasing_lsns():
    _sim, wal = make_wal()
    first = wal.append("WRITE", txn_id=1)
    second = wal.append("COMMIT", txn_id=1)
    assert (first.lsn, second.lsn) == (1, 2)
    assert wal.last_lsn == 2


def test_append_is_volatile_until_flush():
    _sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)
    assert wal.durable_lsn == 0
    assert wal.buffered_count == 1


def test_flush_advances_durable_lsn():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)
    wal.append("COMMIT", txn_id=1)

    def run():
        lsn = yield from wal.flush()
        return lsn

    assert sim.run_process(run()) == 2
    assert wal.durable_lsn == 2
    assert wal.buffered_count == 0


def test_flush_empty_is_noop():
    sim, wal = make_wal()

    def run():
        lsn = yield from wal.flush()
        return (lsn, sim.now)

    assert sim.run_process(run()) == (0, 0.0)


def test_lose_volatile_drops_only_the_tail():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    wal.append("WRITE", txn_id=2)
    lost = wal.lose_volatile()
    assert [r.txn_id for r in lost] == [2]
    assert wal.durable_lsn == 1
    assert [r.txn_id for r in wal.durable_records()] == [1]


def test_lsns_not_reused_after_loss():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=1)
    wal.lose_volatile()
    record = wal.append("WRITE", txn_id=2)
    assert record.lsn == 2  # LSN 1 was consumed by the lost record


def test_durable_records_in_lsn_order():
    sim, wal = make_wal()
    for i in range(5):
        wal.append("WRITE", txn_id=i)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    assert [r.lsn for r in wal.durable_records()] == [1, 2, 3, 4, 5]


def test_records_between_for_shipping_cursor():
    sim, wal = make_wal()
    for i in range(5):
        wal.append("WRITE", txn_id=i)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    shipped = wal.records_between(2, 4)
    assert [r.lsn for r in shipped] == [3, 4]


def test_records_between_beyond_durable_rejected():
    _sim, wal = make_wal()
    wal.append("WRITE")
    with pytest.raises(SimulationError):
        wal.records_between(0, 1)  # lsn 1 not durable yet


def test_record_payload_roundtrip():
    sim, wal = make_wal()
    wal.append("WRITE", txn_id=7, page="p1", value=42)

    def run():
        yield from wal.flush()

    sim.run_process(run())
    record = wal.durable_records()[0]
    assert record.payload == {"page": "p1", "value": 42}
    assert record.txn_id == 7
