"""Disk timing, queueing, failure."""

import pytest

from repro.errors import CrashedError
from repro.sim import Simulator
from repro.storage import Disk


def test_write_then_read_roundtrip():
    sim = Simulator()
    disk = Disk(sim, service_time=0.01)

    def run():
        yield from disk.write("k", "v")
        value = yield from disk.read("k")
        return value

    assert sim.run_process(run()) == "v"


def test_write_takes_service_time():
    sim = Simulator()
    disk = Disk(sim, service_time=0.01, per_item_time=0.001)

    def run():
        yield from disk.write("k", "v")
        return sim.now

    assert sim.run_process(run()) == pytest.approx(0.011)


def test_requests_queue_on_the_arm():
    sim = Simulator()
    disk = Disk(sim, service_time=1.0, per_item_time=0.0)
    finish_times = []

    def writer(i):
        yield from disk.write(i, i)
        finish_times.append(sim.now)

    for i in range(3):
        sim.spawn(writer(i))
    sim.run()
    assert finish_times == [1.0, 2.0, 3.0]


def test_batch_write_cheaper_than_singles():
    """One batch of N beats N individual writes — the group-commit economics."""
    sim_single = Simulator()
    disk_single = Disk(sim_single, service_time=0.01, per_item_time=0.0001)

    def singles():
        for i in range(10):
            yield from disk_single.write(i, i)
        return sim_single.now

    single_time = sim_single.run_process(singles())

    sim_batch = Simulator()
    disk_batch = Disk(sim_batch, service_time=0.01, per_item_time=0.0001)

    def batched():
        yield from disk_batch.write_batch({i: i for i in range(10)})
        return sim_batch.now

    batch_time = sim_batch.run_process(batched())
    assert batch_time < single_time / 5


def test_read_missing_returns_none():
    sim = Simulator()
    disk = Disk(sim)

    def run():
        value = yield from disk.read("missing")
        return value

    assert sim.run_process(run()) is None


def test_failed_disk_raises():
    sim = Simulator()
    disk = Disk(sim)
    disk.fail()

    def run():
        try:
            yield from disk.write("k", "v")
        except CrashedError:
            return "failed"

    assert sim.run_process(run()) == "failed"


def test_repair_restores_service():
    sim = Simulator()
    disk = Disk(sim)
    disk.fail()
    disk.repair()

    def run():
        yield from disk.write("k", "v")
        return disk.peek("k")

    assert sim.run_process(run()) == "v"


def test_contents_and_len():
    sim = Simulator()
    disk = Disk(sim)

    def run():
        yield from disk.write_batch({"a": 1, "b": 2})

    sim.run_process(run())
    assert disk.contents() == {"a": 1, "b": 2}
    assert len(disk) == 2
    assert "a" in disk
