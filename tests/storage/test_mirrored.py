"""Mirrored pair: transparency of single-side failure."""

from repro.errors import CrashedError
from repro.sim import Simulator
from repro.storage import MirroredDisk


def test_write_lands_on_both_sides():
    sim = Simulator()
    mirror = MirroredDisk(sim)

    def run():
        yield from mirror.write("k", "v")

    sim.run_process(run())
    assert mirror.left.peek("k") == "v"
    assert mirror.right.peek("k") == "v"


def test_parallel_write_costs_one_disk_time():
    sim = Simulator()
    mirror = MirroredDisk(sim, service_time=1.0, per_item_time=0.0)

    def run():
        yield from mirror.write("k", "v")
        return sim.now

    assert sim.run_process(run()) == 1.0  # both sides in parallel


def test_read_survives_one_failure():
    sim = Simulator()
    mirror = MirroredDisk(sim)

    def run():
        yield from mirror.write("k", "v")
        mirror.left.fail()
        value = yield from mirror.read("k")
        return value

    assert sim.run_process(run()) == "v"
    assert mirror.available


def test_write_survives_one_failure():
    sim = Simulator()
    mirror = MirroredDisk(sim)
    mirror.right.fail()

    def run():
        yield from mirror.write("k", "v")

    sim.run_process(run())
    assert mirror.left.peek("k") == "v"


def test_both_failed_raises():
    sim = Simulator()
    mirror = MirroredDisk(sim)
    mirror.left.fail()
    mirror.right.fail()
    assert not mirror.available

    def run():
        try:
            yield from mirror.write("k", "v")
        except CrashedError:
            return "dead"

    assert sim.run_process(run()) == "dead"


def test_resilver_copies_missed_blocks():
    sim = Simulator()
    mirror = MirroredDisk(sim)

    def run():
        yield from mirror.write("before", 1)
        mirror.right.fail()
        yield from mirror.write("during", 2)
        mirror.right.repair()

    sim.run_process(run())
    assert mirror.right.peek("during") is None
    assert mirror.resilver() == 1
    assert mirror.right.peek("during") == 2


def test_peek_checks_both_sides():
    sim = Simulator()
    mirror = MirroredDisk(sim)
    mirror.left._blocks["only-right... wait, left"] = 1
    assert mirror.peek("only-right... wait, left") == 1
    assert mirror.peek("missing") is None
