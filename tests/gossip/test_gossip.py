"""Networked gossip: convergence over a real (simulated) fabric."""

import pytest

from repro.core import BusinessRule, Operation, RuleEngine, TypeRegistry
from repro.gossip import GossipCluster, op_from_wire, wire_op
from repro.net.partition import PartitionSchedule, PartitionWindow


def counter_registry():
    registry = TypeRegistry(initial_state=dict)
    registry.register(
        "ADD", lambda s, op: {**s, "total": s.get("total", 0) + op.args["amount"]}
    )
    return registry


def add(amount, uniq=None, at=0.0):
    return Operation("ADD", {"amount": amount}, uniquifier=uniq, ingress_time=at)


def test_wire_roundtrip():
    op = add(5, uniq="u1", at=2.0)
    op.origin = "g0"
    back = op_from_wire(wire_op(op))
    assert back == op
    assert back.args == op.args
    assert back.origin == "g0"
    assert back.ingress_time == 2.0


def test_cluster_converges_over_the_fabric():
    cluster = GossipCluster(counter_registry(), num_replicas=4, period=0.5, seed=3)
    for index, name in enumerate(cluster.nodes):
        cluster.submit(name, add(10 * (index + 1)))
    cluster.run(until=20.0)
    assert cluster.converged()
    assert all(state["total"] == 100 for state in cluster.states())
    assert cluster.sim.metrics.counter("gossip.net.ops_moved").value > 0


def test_partition_blocks_then_heals():
    cluster = GossipCluster(counter_registry(), num_replicas=3, period=0.5, seed=5)
    # Cut g2 off for the first 10 seconds.
    schedule = PartitionSchedule(
        cluster.network, [PartitionWindow(0.0, 10.0, [["g0", "g1"], ["g2"]])]
    )
    schedule.install()
    for index, name in enumerate(cluster.nodes):
        cluster.submit(name, add(index + 1))
    cluster.run(until=8.0)
    assert not cluster.converged()
    isolated = cluster.replica("g2")
    assert isolated.state["total"] == 3  # its own op only
    # Keep gossiping past the heal.
    for node in cluster.nodes.values():
        node.run(until=30.0)
    cluster.sim.run(until=30.0)
    assert cluster.converged()
    assert all(state["total"] == 6 for state in cluster.states())


def test_crashed_node_catches_up_after_restart():
    cluster = GossipCluster(counter_registry(), num_replicas=3, period=0.5, seed=7)
    cluster.submit("g0", add(5))
    cluster.node("g2").crash()
    cluster.run(until=5.0)
    assert cluster.replica("g2").state.get("total", 0) == 0
    cluster.node("g2").restart(until=20.0)
    for name in ("g0", "g1"):
        cluster.node(name).run(until=20.0)
    cluster.sim.run(until=20.0)
    assert cluster.converged()
    assert cluster.replica("g2").state["total"] == 5
    # Disconnection showed up as failed rounds, not errors.
    failed = sum(node.rounds_failed for node in cluster.nodes.values())
    assert failed >= 1


def test_rules_fire_over_the_network():
    """The E5 scenario on the real fabric: locally-legal work merges into
    a violation, surfacing as apologies through the shared queue."""

    def rules_factory():
        return RuleEngine([
            BusinessRule(
                "cap", lambda s, _op: "over" if s.get("total", 0) > 10 else None
            )
        ])

    cluster = GossipCluster(
        counter_registry(), num_replicas=2, period=0.5, seed=9,
        rules_factory=rules_factory,
    )
    cluster.submit("g0", add(8, at=0.0))
    cluster.submit("g1", add(8, at=0.0))
    cluster.run(until=10.0)
    assert cluster.converged()
    assert cluster.apologies.total >= 1
    assert all(state["total"] == 16 for state in cluster.states())


def test_duplicate_submission_across_nodes_collapses():
    cluster = GossipCluster(counter_registry(), num_replicas=2, period=0.5, seed=11)
    cluster.submit("g0", add(5, uniq="shared"))
    cluster.submit("g1", add(5, uniq="shared"))  # retry landed elsewhere
    cluster.run(until=10.0)
    assert all(state["total"] == 5 for state in cluster.states())
