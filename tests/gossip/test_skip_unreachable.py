"""The skip-unreachable optimization: a gossiper that already knows a
peer is detached doesn't burn a round timing out on it — and says so."""

from repro.core import Operation, Replica, TypeRegistry
from repro.gossip import GossipNode
from repro.net import Network
from repro.sim import Simulator


def counter_registry():
    registry = TypeRegistry(initial_state=dict)
    registry.register(
        "ADD", lambda s, op: {**s, "total": s.get("total", 0) + op.args["amount"]}
    )
    return registry


def make_pair(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim)
    registry = counter_registry()
    a = GossipNode(net, Replica("a", registry), peers=["a", "b"], period=1.0, **kwargs)
    b = GossipNode(net, Replica("b", registry), peers=["a", "b"], period=1.0, **kwargs)
    return sim, net, a, b


def test_default_still_times_out_on_detached_peer():
    sim, net, a, b = make_pair()
    b.crash()
    a.run(until=10.0)
    sim.run(until=12.0)
    assert a.rounds_attempted > 0
    assert a.rounds_failed == a.rounds_attempted   # every round timed out
    assert sim.metrics.counter("gossip.skipped_unreachable").value == 0


def test_skip_unreachable_counts_instead_of_timing_out():
    sim, net, a, b = make_pair(skip_unreachable=True)
    b.crash()
    a.run(until=10.0)
    sim.run(until=12.0)
    assert a.rounds_attempted > 0
    assert a.rounds_failed == a.rounds_attempted
    skipped = sim.metrics.counter("gossip.skipped_unreachable").value
    assert skipped == a.rounds_attempted           # skipped, not attempted
    traced = sim.trace.find(kind="gossip.skip_unreachable")
    assert len(traced) == skipped
    assert all(t.payload["peer"] == "b" for t in traced)


def test_skip_unreachable_saves_simulated_time():
    """The point of the flag: the skipping node finishes its rounds at
    the period cadence instead of stalling on RPC timeouts."""
    def failed_rounds(skip):
        sim, net, a, b = make_pair(skip_unreachable=skip)
        b.crash()
        a.run(until=10.0)
        sim.run(until=12.0)
        return a.rounds_attempted

    # Timing out (0.5s x 2 attempts per round) costs rounds vs skipping.
    assert failed_rounds(skip=True) > failed_rounds(skip=False)


def test_skip_does_not_fire_for_reachable_peers():
    sim, net, a, b = make_pair(skip_unreachable=True)
    a.replica.submit(Operation("ADD", {"amount": 1}, uniquifier="ua"))
    a.run(until=5.0)
    b.run(until=5.0)
    sim.run(until=6.0)
    assert sim.metrics.counter("gossip.skipped_unreachable").value == 0
    assert b.replica.state["total"] == 1           # gossip actually happened


def test_skipped_peer_resumes_after_restart():
    sim, net, a, b = make_pair(skip_unreachable=True)
    a.replica.submit(Operation("ADD", {"amount": 2}, uniquifier="ua"))
    b.crash()
    a.run(until=20.0)
    sim.run(until=5.0)
    assert sim.metrics.counter("gossip.skipped_unreachable").value > 0
    b.restart()
    sim.run(until=20.0)
    assert b.replica.state["total"] == 2           # convergence resumed
