"""GossipNode unit-level behaviour: digest contents, exchange mechanics."""

from repro.core import Operation, Replica, TypeRegistry
from repro.gossip import GossipNode
from repro.net import Network
from repro.sim import Simulator


def counter_registry():
    registry = TypeRegistry(initial_state=dict)
    registry.register(
        "ADD", lambda s, op: {**s, "total": s.get("total", 0) + op.args["amount"]}
    )
    return registry


def make_pair(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    registry = counter_registry()
    a = GossipNode(net, Replica("a", registry), peers=["a", "b"], period=1.0)
    b = GossipNode(net, Replica("b", registry), peers=["a", "b"], period=1.0)
    return sim, a, b


def test_peers_exclude_self():
    _sim, a, _b = make_pair()
    assert a.peers == ["b"]


def test_single_exchange_moves_both_directions():
    sim, a, b = make_pair()
    a.replica.submit(Operation("ADD", {"amount": 1}, uniquifier="ua"))
    b.replica.submit(Operation("ADD", {"amount": 2}, uniquifier="ub"))

    def run():
        moved = yield from a.exchange_with("b")
        return moved

    moved = sim.run_process(run())
    assert moved == 2
    assert a.replica.state["total"] == b.replica.state["total"] == 3


def test_exchange_noop_when_converged():
    sim, a, b = make_pair()
    op = Operation("ADD", {"amount": 1}, uniquifier="shared")
    a.replica.submit(op)
    b.replica.integrate([op])

    def run():
        moved = yield from a.exchange_with("b")
        return moved

    assert sim.run_process(run()) == 0


def test_digest_handler_reports_wants():
    sim, a, b = make_pair()
    b.replica.submit(Operation("ADD", {"amount": 2}, uniquifier="only-b"))

    class FakeMsg:
        payload = {"have": ["only-a"]}

    reply = b._handle_digest(b.endpoint, FakeMsg())
    assert [entry["uniquifier"] for entry in reply["ops"]] == ["only-b"]
    assert reply["want"] == ["only-a"]


def test_stop_detaches_endpoint():
    sim, a, b = make_pair()
    a.run(until=5.0)
    a.stop()
    assert not a.network.is_attached("a")
