"""The experiment index stays consistent with the repository."""

import importlib
import pathlib

import pytest

from repro.errors import SimulationError
from repro.experiments import EXPERIMENTS, by_id, index, summary_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_ids_unique_and_complete():
    ids = [e.id for e in EXPERIMENTS]
    assert len(ids) == len(set(ids))
    assert [e.id for e in EXPERIMENTS if e.id.startswith("E")] == [
        f"E{i}" for i in range(1, 20)
    ]
    assert len([e for e in EXPERIMENTS if e.id.startswith("A")]) >= 6


def test_every_bench_file_exists():
    for experiment in EXPERIMENTS:
        assert (REPO_ROOT / experiment.bench).exists(), experiment.bench


def test_every_module_imports():
    for experiment in EXPERIMENTS:
        for module in experiment.modules:
            importlib.import_module(module)


def test_every_claim_cites_a_section():
    for experiment in EXPERIMENTS:
        assert "§" in experiment.claim, experiment.id


def test_lookup():
    assert by_id("E1").title.startswith("Tandem")
    assert "E7" in index()
    with pytest.raises(SimulationError):
        by_id("E99")


def test_summary_table_renders():
    text = summary_table().render()
    assert "E12" in text and "A6" in text


def test_benches_on_disk_are_all_indexed():
    """No orphan bench: every benchmarks/bench_*.py appears in the index."""
    indexed = {e.bench for e in EXPERIMENTS}
    on_disk = {
        f"benchmarks/{p.name}"
        for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    }
    assert on_disk == indexed
