"""Repeated fail-overs back and forth — roles swap cleanly, nothing
shipped is ever lost, and the loss accounting stays exact."""

from repro.logship import LogShippingSystem
from repro.sim import Timeout


def test_failover_ping_pong():
    system = LogShippingSystem(ship_interval=0.01, seed=9)

    def story():
        # Round 1: east serves.
        yield from system.submit({"a": 1})
        yield Timeout(0.5)
        system.fail_over()             # west takes over
        assert system.serving == "west"
        yield from system.submit({"b": 2})
        yield Timeout(0.5)
        # East returns; no orphans (everything had shipped).
        result = system.recover_orphans(policy="discard")
        assert result["orphans"] == []
        yield Timeout(0.5)             # west ships b=2 to east
        system.fail_over()             # back to east
        assert system.serving == "east"
        yield from system.submit({"c": 3})
        a = yield from system.read("a")
        b = yield from system.read("b")
        c = yield from system.read("c")
        return (a, b, c)

    assert system.sim.run_process(story()) == (1, 2, 3)
    assert system.sim.metrics.counter("logship.lost_commits").value == 0


def test_pingpong_with_orphans_each_way():
    system = LogShippingSystem(ship_interval=100.0, seed=9)  # never ships

    def story():
        txn_east = yield from system.submit({"a": 1})
        system.fail_over()
        txn_west = yield from system.submit({"b": 2})
        orphans_east = system.recover_orphans(policy="discard")["orphans"]
        system.fail_over()  # back to east (west's work now stranded)
        orphans_west = system.recover_orphans(policy="discard")["orphans"]
        return (txn_east, txn_west, orphans_east, orphans_west)

    txn_east, txn_west, orphans_east, orphans_west = system.sim.run_process(story())
    assert orphans_east == [txn_east]
    assert orphans_west == [txn_west]
    assert system.sim.metrics.counter("logship.lost_commits").value == 2


def test_reapply_after_pingpong_restores_both_sides_work():
    system = LogShippingSystem(ship_interval=100.0, seed=9)

    def story():
        yield from system.submit({"a": 1})
        system.fail_over()
        system.recover_orphans(policy="reapply")
        value = yield from system.read("a")
        return value

    assert system.sim.run_process(story()) == 1
