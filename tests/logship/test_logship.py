"""Log shipping: async loss windows, sync safety, latency ordering."""

import pytest

from repro.logship import LogShippingSystem, ShipMode
from repro.sim import Timeout


def test_commit_and_read():
    system = LogShippingSystem(seed=1)

    def job():
        yield from system.submit({"x": 1})
        value = yield from system.read("x")
        return value

    assert system.sim.run_process(job()) == 1


def test_async_ships_eventually():
    system = LogShippingSystem(ship_interval=0.05, seed=1)

    def job():
        txn = yield from system.submit({"x": 1})
        yield Timeout(1.0)
        return txn

    txn = system.sim.run_process(job())
    assert txn in system.backup.applied_txns
    assert system.backup.state["x"] == 1


def test_async_failover_loses_unshipped_tail():
    system = LogShippingSystem(ship_interval=10.0, seed=1)  # slow shipper

    def job():
        txn = yield from system.submit({"x": 1})
        result = system.fail_over()
        return (txn, result["lost_txns"])

    txn, lost = system.sim.run_process(job())
    assert lost == [txn]
    assert system.sim.metrics.counter("logship.lost_commits").value == 1


def test_async_failover_after_ship_loses_nothing():
    system = LogShippingSystem(ship_interval=0.01, seed=1)

    def job():
        yield from system.submit({"x": 1})
        yield Timeout(1.0)  # let the shipper run
        result = system.fail_over()
        return result["lost_txns"]

    assert system.sim.run_process(job()) == []


def test_sync_mode_never_loses():
    system = LogShippingSystem(mode=ShipMode.SYNC, seed=1)

    def job():
        yield from system.submit({"x": 1})
        result = system.fail_over()
        return result["lost_txns"]

    assert system.sim.run_process(job()) == []


def test_sync_commit_pays_wan_latency():
    async_system = LogShippingSystem(mode=ShipMode.ASYNC, seed=2)
    sync_system = LogShippingSystem(mode=ShipMode.SYNC, seed=2)

    def workload(system):
        def job():
            for i in range(10):
                yield from system.submit({f"k{i}": i})

        system.sim.run_process(job())
        return system.sim.metrics.histogram("logship.commit_latency").mean

    async_latency = workload(async_system)
    sync_latency = workload(sync_system)
    assert sync_latency > async_latency * 3


def test_new_primary_serves_after_failover():
    system = LogShippingSystem(ship_interval=0.01, seed=1)

    def job():
        yield from system.submit({"x": 1})
        yield Timeout(1.0)
        system.fail_over()
        yield from system.submit({"y": 2})
        x = yield from system.read("x")
        y = yield from system.read("y")
        return (x, y)

    assert system.sim.run_process(job()) == (1, 2)


def test_replay_is_idempotent():
    system = LogShippingSystem(ship_interval=0.05, seed=1)
    backup = system.backup

    def job():
        yield from system.submit({"x": 1}, txn_id="t1")
        yield Timeout(1.0)

    system.sim.run_process(job())
    # Re-deliver the same records by hand: applied set must dedup them.
    backup.replay_record({"lsn": 1, "kind": "WRITE", "txn": "t1", "key": "x", "value": 999})
    backup.replay_record({"lsn": 2, "kind": "COMMIT", "txn": "t1"})
    assert backup.state["x"] == 1


def test_resubmit_same_txn_id_is_idempotent():
    system = LogShippingSystem(seed=1)

    def job():
        yield from system.submit({"x": 1}, txn_id="t1")
        yield from system.submit({"x": 999}, txn_id="t1")  # retry, ignored
        value = yield from system.read("x")
        return value

    assert system.sim.run_process(job()) == 1
