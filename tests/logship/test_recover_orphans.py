"""Resurrection accounting in depth: multi-key clobber counts, the
failover-before-any-batch-shipped edge, and recovery after a fenced
(live-primary) takeover."""

from repro.logship import LogShippingSystem
from repro.net.latency import FixedLatency
from repro.sim import Timeout


def make_system(**kwargs):
    kwargs.setdefault("ship_interval", 100.0)   # nothing ships on its own
    kwargs.setdefault("wan_latency", FixedLatency(0.01))
    return LogShippingSystem(**kwargs)


def test_failover_before_any_batch_shipped_orphans_everything():
    system = make_system()

    def job():
        for i in range(4):
            yield from system.submit({f"k{i}": i}, txn_id=f"t{i}")
        result = system.fail_over()
        return result

    result = system.sim.run_process(job())
    assert result["lost_txns"] == ["t0", "t1", "t2", "t3"]
    assert system.primary.state == {}           # west never saw a byte
    recovery = system.recover_orphans(policy="discard")
    assert recovery["orphans"] == ["t0", "t1", "t2", "t3"]
    assert system.sim.metrics.counter("logship.discarded_orphans").value == 4


def test_reapply_resurrects_the_whole_tail():
    system = make_system()

    def job():
        for i in range(3):
            yield from system.submit({f"k{i}": i}, txn_id=f"t{i}")
        system.fail_over()
        return system.recover_orphans(policy="reapply")

    result = system.sim.run_process(job())
    assert result["orphans"] == ["t0", "t1", "t2"]
    assert result["clobbered_keys"] == []       # west wrote nothing meanwhile
    assert system.primary.state == {"k0": 0, "k1": 1, "k2": 2}
    assert system.sim.metrics.counter("logship.resurrected").value == 3


def test_reapply_counts_every_clobbered_key():
    """One orphan touching three keys; the new primary rewrote two of
    them after the takeover — both count, the untouched one does not."""
    system = make_system()

    def job():
        yield from system.submit(
            {"a": "old", "b": "old", "c": "old"}, txn_id="t-orphan"
        )
        system.fail_over()
        yield from system.submit({"a": "new"}, txn_id="t-new-a")
        yield from system.submit({"b": "new"}, txn_id="t-new-b")
        return system.recover_orphans(policy="reapply")

    result = system.sim.run_process(job())
    assert sorted(result["clobbered_keys"]) == ["a", "b"]
    assert system.sim.metrics.counter("logship.clobbered_keys").value == 2
    # The damage itself: old values on top of newer ones.
    assert system.primary.state["a"] == "old"
    assert system.primary.state["b"] == "old"
    assert system.primary.state["c"] == "old"


def test_writes_before_takeover_do_not_count_as_clobbered():
    """The cutoff is the failover time: keys the backup already had from
    normal shipping are overwritten silently (same value anyway)."""
    system = make_system(ship_interval=0.05)

    def job():
        yield from system.submit({"a": 1}, txn_id="t-shipped")
        yield Timeout(1.0)                      # ships to west
        yield from system.submit({"b": "orphan"}, txn_id="t-orphan")
        system.fail_over()
        return system.recover_orphans(policy="reapply")

    result = system.sim.run_process(job())
    assert result["orphans"] == ["t-orphan"]
    assert result["clobbered_keys"] == []
    assert system.primary.state == {"a": 1, "b": "orphan"}


def test_reapply_after_fenced_takeover_of_live_primary():
    """take_over never crashed east, so recovery is reintegration: the
    in-doubt tail replays, and east's fence stays in force."""
    system = make_system()

    def job():
        yield from system.submit({"x": "old"}, txn_id="t-in-doubt")
        system.take_over(fenced=True, cause="conviction")
        yield from system.submit({"x": "new"}, txn_id="t-west")
        result = system.recover_orphans(policy="reapply")
        yield Timeout(1.0)                      # let the fence cast land
        return result

    result = system.sim.run_process(job())
    assert result["orphans"] == ["t-in-doubt"]
    assert result["clobbered_keys"] == ["x"]
    assert system.primary.state["x"] == "old"
    assert not system.sites["east"].crashed
    # The fence reached the live deposed primary over the healthy link.
    assert system.sites["east"].deposed


def test_resurrection_ships_forward_after_recovery():
    """After recovery the new primary's shipper resumes toward the
    restarted site: post-takeover commits become durable everywhere."""
    system = make_system(ship_interval=0.05)

    def job():
        yield from system.submit({"a": 1}, txn_id="t-before")
        system.fail_over()
        yield from system.submit({"b": 2}, txn_id="t-after")
        system.recover_orphans(policy="discard")
        yield Timeout(2.0)

    system.sim.run_process(job())
    assert "t-after" in system.durable_everywhere()
