"""Epoch fencing at the replica and system level, and the SYNC-mode
degradation counter."""

import pytest

from repro.errors import StaleEpochError
from repro.logship import LogShippingSystem, ShipMode
from repro.net.latency import FixedLatency
from repro.sim import Timeout


def make_system(mode=ShipMode.ASYNC, **kwargs):
    kwargs.setdefault("ship_interval", 0.05)
    kwargs.setdefault("wan_latency", FixedLatency(0.01))
    return LogShippingSystem(mode, **kwargs)


def test_fence_is_monotonic():
    system = make_system()
    east = system.sites["east"]
    east.fence(5)
    east.fence(3)                     # an older token cannot lower the bar
    assert east.fenced_below == 5
    assert east.deposed               # own epoch 0 < 5


def test_deposed_replica_rejects_commits():
    system = make_system()
    east = system.sites["east"]
    east.fence(2)

    def job():
        yield from east.commit_transaction("t1", {"k": 1})

    with pytest.raises(StaleEpochError) as excinfo:
        system.sim.run_process(job())
    assert excinfo.value.epoch == 0
    assert excinfo.value.current == 2
    assert "t1" not in east.committed_local


def test_fenced_ship_bounces_and_teaches_the_sender():
    """A deposed sender's batch is rejected wholesale, and the reply
    carries the regime it lost to — fencing the sender as a side effect."""
    system = make_system(ship_interval=100.0)
    sim = system.sim
    west = system.sites["west"]
    west.epoch = 3
    west.fence(3)                     # west belongs to regime 3
    sim.spawn(system.submit({"k": "old"}, txn_id="t-stale"))
    sim.run(until=0.5)

    result = sim.run_process(system._ship_once("east"), until=5.0)
    assert result is None             # degraded, not shipped
    east = system.sites["east"]
    assert east.fenced_below == 3
    assert east.deposed
    assert "t-stale" not in west.applied_txns
    assert sim.metrics.counter("logship.stale_epoch_rejected").value >= 1
    assert sim.metrics.counter("logship.west.fenced_batches").value == 1


def test_fence_message_fences():
    system = make_system()
    sim = system.sim

    def job():
        reply = yield from system.client.call("east", "FENCE", {"epoch": 7})
        return reply

    reply = sim.run_process(job(), until=5.0)
    assert reply == {"epoch": 7}
    assert system.sites["east"].fenced_below == 7


def test_current_epoch_traffic_passes_the_fence():
    """Fencing rejects *older* regimes only: the owning regime's own
    batches (epoch == fenced_below) apply normally."""
    system = make_system(ship_interval=100.0)
    sim = system.sim
    system.adopt_epoch(4)
    system.sites["west"].fence(4)
    sim.spawn(system.submit({"k": 1}, txn_id="t1"))
    sim.run(until=0.5)
    shipped = sim.run_process(system._ship_once("east"), until=5.0)
    assert shipped and shipped > 0
    assert "t1" in system.sites["west"].applied_txns


def test_sync_degrades_loudly_when_peer_unreachable():
    system = make_system(mode=ShipMode.SYNC)
    sim = system.sim

    def job():
        yield from system.submit({"k": 1}, txn_id="t-ok")
        system.network.detach("west")
        yield Timeout(0.01)
        yield from system.submit({"k": 2}, txn_id="t-degraded")

    sim.run_process(job(), until=10.0)
    # Both commits acked — but the second one's SYNC promise is broken,
    # and that now shows up in the metrics instead of passing silently.
    assert sim.metrics.counter("logship.acked_commits").value == 2
    assert sim.metrics.counter("logship.sync_degraded").value == 1
    assert "t-degraded" not in system.sites["west"].applied_txns
    events = sim.trace.find(kind="sync_degraded")
    assert events and events[0].payload["site"] == "east"


def test_sync_degrades_loudly_when_fenced():
    system = make_system(mode=ShipMode.SYNC)
    sim = system.sim
    system.sites["west"].epoch = 9
    system.sites["west"].fence(9)

    def job():
        yield from system.submit({"k": 1})

    sim.run_process(job(), until=10.0)
    assert sim.metrics.counter("logship.sync_degraded").value == 1
    assert sim.metrics.counter("logship.stale_epoch_rejected").value >= 1


def test_default_system_carries_no_epochs():
    """Without a failover stack installed, nothing is fenced and nothing
    is stamped — the pre-fencing behavior (and its goldens) hold."""
    system = make_system()
    sim = system.sim
    sim.spawn(system.submit({"k": 1}))
    sim.run(until=1.0)
    for site in system.sites.values():
        assert site.epoch == 0
        assert site.fenced_below == 0
        assert not site.deposed
    assert "k" in system.sites["west"].state
    assert sim.metrics.counter("logship.stale_epoch_rejected").value == 0
