"""Rejoin after takeover: snapshot + tail instead of full replay."""

from repro.logship import LogShippingSystem
from repro.sim import Timeout


def run_workload(system, n, dwell=0.05):
    """Commit n txns with time between them (so snapshots interleave)."""
    for i in range(n):
        yield from system.submit({f"k{i % 7}": i})
        yield Timeout(dwell)


def test_backup_cold_restart_recovers_replayed_state():
    """A cold-crashed backup loses its in-memory replayed state; the
    snapshot restores it and CATCHUP re-ships only the tail."""
    system = LogShippingSystem(ship_interval=0.02, seed=3, snapshot_cadence=0.5)

    def job():
        yield from run_workload(system, 40)
        yield Timeout(1.0)  # shipper + snapshotter settle
        applied_before = set(system.backup.applied_txns)
        system.backup.crash()
        yield from run_workload(system, 5)  # primary keeps serving
        result = yield from system.rejoin()
        yield Timeout(2.0)  # re-ship the tail
        return applied_before, result

    applied_before, result = system.sim.run_process(job())
    # The snapshot did the heavy lifting: recovery started from a real cut.
    assert result["applied_peer_lsn"] > 0
    assert result["reship_from"] == result["applied_peer_lsn"]
    # Everything the backup had applied is back, plus the tail it missed.
    assert applied_before <= system.backup.applied_txns
    assert system.backup.state == system.primary.state


def test_rejoin_without_snapshots_reships_from_zero():
    system = LogShippingSystem(ship_interval=0.02, seed=3)

    def job():
        yield from run_workload(system, 20)
        yield Timeout(1.0)
        system.backup.crash()
        result = yield from system.rejoin()
        yield Timeout(2.0)
        return result

    result = system.sim.run_process(job())
    assert result["snapshot_lsn"] == 0
    assert result["reship_from"] == 0  # the peer starts over
    assert system.backup.state == system.primary.state


def test_snapshot_shrinks_reship_volume():
    """The point of the exercise: with snapshots the peer re-ships a tail,
    without them it re-ships the entire history."""
    volumes = {}
    for cadence in (None, 0.5):
        system = LogShippingSystem(
            ship_interval=0.02, seed=7, snapshot_cadence=cadence
        )

        def job():
            yield from run_workload(system, 50)
            yield Timeout(1.0)
            system.backup.crash()
            shipped_before = system.sim.metrics.counters().get(
                "logship.shipped_records", 0
            )
            yield from system.rejoin()
            yield Timeout(3.0)
            reshipped = (
                system.sim.metrics.counters()["logship.shipped_records"]
                - shipped_before
            )
            return reshipped

        volumes[cadence] = system.sim.run_process(job())
        assert system.backup.state == system.primary.state
    assert volumes[0.5] < volumes[None]


def test_old_primary_rejoins_after_takeover():
    """The full §5.1 cycle with recovery: primary dies, backup takes over,
    the corpse cold-restarts from its snapshot and becomes the backup."""
    system = LogShippingSystem(ship_interval=0.02, seed=11, snapshot_cadence=0.4)

    def job():
        yield from run_workload(system, 30)
        yield Timeout(1.0)
        system.fail_over()  # east crashes, west serves
        yield from run_workload(system, 10)
        result = yield from system.rejoin("east")
        yield Timeout(2.0)
        return result

    result = system.sim.run_process(job())
    assert system.serving == "west"
    assert result["replayed_records"] >= 0
    east, west = system.sites["east"], system.sites["west"]
    # East caught up on everything west decided after the takeover.
    assert west.committed_local <= east.applied_txns
    # Recovery time was accounted.
    assert system.sim.metrics.histogram("logship.rejoin.time_s").count == 1


def test_recovery_time_scales_with_tail_not_log():
    """Same tail, double the history: rejoin cost stays flat when a
    snapshot covers the bulk."""
    times = []
    for total in (30, 60):
        system = LogShippingSystem(
            ship_interval=0.02, seed=5, snapshot_cadence=0.25
        )

        def job():
            yield from run_workload(system, total)
            yield Timeout(1.0)
            system.backup.crash()
            yield Timeout(0.1)  # a short outage: small tail either way
            result = yield from system.rejoin()
            return result["recovery_time"]

        times.append(system.sim.run_process(job()))
    # Flat within 50% despite 2x the log (pure tail replay + snapshot load;
    # the snapshot chain is bounded by compaction).
    assert times[1] < times[0] * 1.5
