"""§5.1: orphaned work locked in the failed primary, and what recovery
policies do with it."""

import pytest

from repro.errors import SimulationError
from repro.logship import LogShippingSystem
from repro.sim import Timeout


def run_orphan_scenario(policy, post_takeover_writes=None):
    """Commit t-orphan, fail over before it ships, optionally write at the
    new primary, then recover the old site under `policy`."""
    system = LogShippingSystem(ship_interval=100.0, seed=3)

    def job():
        yield from system.submit({"x": "old", "z": "orphan-only"}, txn_id="t-orphan")
        system.fail_over()
        for key, value in (post_takeover_writes or {}).items():
            yield from system.submit({key: value})
        result = system.recover_orphans(policy=policy)
        return result

    result = system.sim.run_process(job())
    return system, result


def test_discard_policy_counts_orphans():
    system, result = run_orphan_scenario("discard")
    assert result["orphans"] == ["t-orphan"]
    assert system.sim.metrics.counter("logship.discarded_orphans").value == 1
    assert "z" not in system.primary.state


def test_reapply_policy_resurrects_work():
    system, result = run_orphan_scenario("reapply")
    assert result["orphans"] == ["t-orphan"]
    assert system.primary.state["z"] == "orphan-only"
    assert result["clobbered_keys"] == []


def test_reapply_clobbers_newer_writes():
    """The reordering hazard: the orphan's old value lands on top of a
    value written after the takeover."""
    system, result = run_orphan_scenario("reapply", post_takeover_writes={"x": "new"})
    assert result["clobbered_keys"] == ["x"]
    assert system.primary.state["x"] == "old"  # the damage, visible
    assert system.sim.metrics.counter("logship.clobbered_keys").value == 1


def test_discard_never_clobbers():
    system, result = run_orphan_scenario("discard", post_takeover_writes={"x": "new"})
    assert result["clobbered_keys"] == []
    assert system.primary.state["x"] == "new"


def test_unknown_policy_rejected():
    system = LogShippingSystem(seed=1)

    def job():
        yield from system.submit({"x": 1})
        system.fail_over()
        system.recover_orphans(policy="wish-for-the-best")
        yield Timeout(0)

    with pytest.raises(SimulationError):
        system.sim.run_process(job())


def test_no_orphans_when_everything_shipped():
    system = LogShippingSystem(ship_interval=0.01, seed=1)

    def job():
        yield from system.submit({"x": 1})
        yield Timeout(1.0)
        system.fail_over()
        return system.recover_orphans(policy="discard")

    result = system.sim.run_process(job())
    assert result["orphans"] == []
