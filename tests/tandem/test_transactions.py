"""Happy-path transactions in both DP generations."""

import pytest

from repro.tandem import DPMode, TandemConfig, TandemSystem


@pytest.fixture(params=[DPMode.DP1, DPMode.DP2], ids=["dp1", "dp2"])
def system(request):
    return TandemSystem(TandemConfig(mode=request.param, num_dps=2), seed=1)


def test_write_commit_read(system):
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 10)
        yield from client.commit(txn)
        txn2 = client.begin()
        value = yield from client.read(txn2, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 10


def test_transaction_reads_own_writes(system):
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 5)
        value = yield from client.read(txn, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 5


def test_uncommitted_write_invisible_to_others(system):
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 5)
        other = client.begin()
        value = yield from client.read(other, "dp0", "x")
        return value

    assert system.sim.run_process(job()) is None


def test_multi_dp_transaction(system):
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "a", 1)
        yield from client.write(txn, "dp1", "b", 2)
        yield from client.commit(txn)
        reader = client.begin()
        a = yield from client.read(reader, "dp0", "a")
        b = yield from client.read(reader, "dp1", "b")
        return (a, b)

    assert system.sim.run_process(job()) == (1, 2)


def test_abort_discards_writes(system):
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 5)
        yield from client.abort(txn)
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) is None


def test_commit_reaches_adp(system):
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.commit(txn)
        return txn.id

    txn_id = system.sim.run_process(job())
    assert txn_id in system.adp.committed_txns()


def test_commit_log_durable_at_adp(system):
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.write(txn, "dp0", "y", 2)
        yield from client.commit(txn)

    system.sim.run_process(job())
    records = system.adp.durable_records_for("dp0")
    writes = [r for r in records if r["kind"] == "WRITE"]
    assert {(r["key"], r["value"]) for r in writes} == {("x", 1), ("y", 2)}


def test_sequential_transactions_accumulate(system):
    client = system.client()

    def job():
        for i in range(5):
            txn = client.begin()
            yield from client.write(txn, "dp0", f"k{i}", i)
            yield from client.commit(txn)
        reader = client.begin()
        values = []
        for i in range(5):
            values.append((yield from client.read(reader, "dp0", f"k{i}")))
        return values

    assert system.sim.run_process(job()) == [0, 1, 2, 3, 4]


def test_concurrent_clients_disjoint_keys(system):
    clients = [system.client() for _ in range(3)]

    def job(client, tag):
        txn = client.begin()
        yield from client.write(txn, "dp0", tag, tag)
        yield from client.commit(txn)

    for i, client in enumerate(clients):
        system.sim.spawn(job(client, f"key-{i}"))
    system.sim.run()
    state = system.pair("dp0").state()
    assert {f"key-{i}" for i in range(3)} <= set(state.committed)
