"""Takeover without a crash: the tandem backup promotes itself while the
old primary is still alive — and the primary-identity guard is what
fences the deposed side's traffic."""

import pytest

from repro.errors import SimulationError, TransactionAborted
from repro.net.rpc import Endpoint, RpcError
from repro.tandem import DPMode, TandemConfig, TandemSystem, TxnStatus


def make_system(mode, seed=1):
    return TandemSystem(TandemConfig(mode=mode, num_dps=2), seed=seed)


def test_take_over_flips_primary_without_stopping_the_old_side():
    system = make_system(DPMode.DP2)
    pair = system.pair("dp0")
    old = pair.current
    system.take_over("dp0")
    assert pair.current == pair.backup_name
    # Unlike crash_primary, the deposed side is still on the network.
    assert system.network.is_attached(old)
    assert system.sim.metrics.counter("tandem.dp0.takeovers").value == 1


def test_deposed_primary_rejects_traffic_at_the_guard():
    system = make_system(DPMode.DP2)
    client = system.client()
    pair = system.pair("dp0")
    old = pair.current
    system.take_over("dp0")
    probe = Endpoint(system.network, "probe")
    probe.start()

    def job():
        txn = client.begin()
        # A client that still believes in the deposed side: the write is
        # refused at the primary-identity guard, not applied.
        with pytest.raises(RpcError):
            yield from probe.call(
                old, "WRITE", {"txn": txn.id, "key": "x", "value": 9},
                timeout=1.0, retries=0,
            )
        # The same verb at the promoted side works.
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.commit(txn)
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 1
    # The refused write never reached either side's state.
    assert "x" not in system.pair("dp0").state(old).committed


def test_dp2_take_over_aborts_inflight_like_a_crash():
    system = make_system(DPMode.DP2)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        aborted = system.take_over("dp0")
        assert aborted == [txn.id]
        try:
            yield from client.commit(txn)
        except TransactionAborted:
            return "aborted"
        return "committed"

    assert system.sim.run_process(job()) == "aborted"
    assert system.sim.metrics.counter("tandem.aborted_by_takeover").value == 1


def test_dp1_inflight_transaction_survives_take_over():
    system = make_system(DPMode.DP1)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        aborted = system.take_over("dp0")
        assert aborted == []
        yield from client.write(txn, "dp0", "y", 2)
        yield from client.commit(txn)
        reader = client.begin()
        x = yield from client.read(reader, "dp0", "x")
        y = yield from client.read(reader, "dp0", "y")
        return (x, y)

    assert system.sim.run_process(job()) == (1, 2)


def test_committed_work_survives_take_over():
    for mode in (DPMode.DP1, DPMode.DP2):
        system = make_system(mode)
        client = system.client()

        def job():
            txn = client.begin()
            yield from client.write(txn, "dp0", "x", 42)
            yield from client.commit(txn)
            system.take_over("dp0")
            reader = client.begin()
            value = yield from client.read(reader, "dp0", "x")
            return value

        assert system.sim.run_process(job()) == 42


def test_take_over_fails_stranded_flush_waiters():
    """A FLUSH riding the group-commit bus when the takeover lands must
    abort cleanly instead of waiting forever for a bus that was
    cancelled."""
    system = make_system(DPMode.DP2)
    client = system.client()
    pair = system.pair("dp0")
    outcome = {}

    def committer():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        try:
            yield from client.commit(txn)
            outcome["result"] = "committed"
        except (TransactionAborted, RpcError):
            outcome["result"] = "aborted"

    system.sim.spawn(committer())
    # Let the WRITE land and the FLUSH start waiting on the ship timer,
    # then depose the primary out from under it.
    system.sim.run(until=pair.config.group_commit_timer / 2)
    system.take_over("dp0")
    system.sim.run(until=10.0)
    assert outcome["result"] == "aborted"
    assert pair._ship_waiters == []


def test_second_take_over_flips_back():
    system = make_system(DPMode.DP2)
    client = system.client()
    pair = system.pair("dp0")
    first = pair.current

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.commit(txn)
        system.take_over("dp0")
        txn2 = client.begin()
        yield from client.write(txn2, "dp0", "y", 2)
        yield from client.commit(txn2)
        system.take_over("dp0")
        reader = client.begin()
        x = yield from client.read(reader, "dp0", "x")
        y = yield from client.read(reader, "dp0", "y")
        return (x, y)

    result = system.sim.run_process(job())
    assert pair.current == first
    # x committed before the first flip is everywhere; y needs the log
    # shipped to the original side, which stayed alive the whole time.
    assert result == (1, 2)
