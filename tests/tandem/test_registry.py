"""TMF registry: statuses, dirty sets, takeover aborts."""

import pytest

from repro.errors import SimulationError
from repro.tandem import TmfRegistry, TxnStatus


def test_new_txns_get_unique_ids():
    registry = TmfRegistry()
    ids = {registry.new_txn() for _ in range(10)}
    assert len(ids) == 10


def test_initial_status_active():
    registry = TmfRegistry()
    txn = registry.new_txn()
    assert registry.status(txn) is TxnStatus.ACTIVE


def test_unknown_txn_rejected():
    registry = TmfRegistry()
    with pytest.raises(SimulationError):
        registry.status(99)


def test_commit_and_abort_transitions():
    registry = TmfRegistry()
    a, b = registry.new_txn(), registry.new_txn()
    registry.mark_committed(a)
    registry.mark_aborted(b)
    assert registry.status(a) is TxnStatus.COMMITTED
    assert registry.status(b) is TxnStatus.ABORTED


def test_commit_after_abort_rejected():
    registry = TmfRegistry()
    txn = registry.new_txn()
    registry.mark_aborted(txn)
    with pytest.raises(SimulationError):
        registry.mark_committed(txn)


def test_abort_after_commit_rejected():
    registry = TmfRegistry()
    txn = registry.new_txn()
    registry.mark_committed(txn)
    with pytest.raises(SimulationError):
        registry.mark_aborted(txn)


def test_abort_active_dirty_at_targets_only_that_dp():
    registry = TmfRegistry()
    at_dp0 = registry.new_txn()
    at_dp1 = registry.new_txn()
    committed_at_dp0 = registry.new_txn()
    registry.mark_dirty(at_dp0, "dp0")
    registry.mark_dirty(at_dp1, "dp1")
    registry.mark_dirty(committed_at_dp0, "dp0")
    registry.mark_committed(committed_at_dp0)
    aborted = registry.abort_active_dirty_at("dp0")
    assert aborted == [at_dp0]
    assert registry.status(at_dp1) is TxnStatus.ACTIVE
    assert registry.status(committed_at_dp0) is TxnStatus.COMMITTED


def test_counts():
    registry = TmfRegistry()
    registry.mark_committed(registry.new_txn())
    registry.new_txn()
    assert registry.counts() == {"active": 1, "committed": 1, "aborted": 0}


def test_dirty_set_copy():
    registry = TmfRegistry()
    txn = registry.new_txn()
    registry.mark_dirty(txn, "dp0")
    dirty = registry.dirty_set(txn)
    dirty.add("dp9")
    assert registry.dirty_set(txn) == {"dp0"}
