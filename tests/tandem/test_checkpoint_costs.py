"""The E1 shape at unit scale: DP2's WRITE is cheaper than DP1's.

§3.2: combining checkpointing with logging was "a dramatic savings in CPU
cost and an even more dramatic savings in latency since the application
did not need to wait for the checkpoint to see the response to the WRITE."
"""

from repro.tandem import DPMode, TandemConfig, TandemSystem


def run_workload(mode, writes_per_txn=4, txns=10, seed=3):
    system = TandemSystem(TandemConfig(mode=mode, num_dps=1), seed=seed)
    client = system.client()

    def job():
        for t in range(txns):
            txn = client.begin()
            for w in range(writes_per_txn):
                yield from client.write(txn, "dp0", f"k{t}-{w}", w)
            yield from client.commit(txn)

    system.sim.run_process(job())
    return system


def test_dp1_checkpoints_every_write():
    system = run_workload(DPMode.DP1, writes_per_txn=4, txns=10)
    assert system.sim.metrics.counter("tandem.dp0.checkpoints").value == 40


def test_dp2_never_checkpoints_per_write():
    system = run_workload(DPMode.DP2, writes_per_txn=4, txns=10)
    assert system.sim.metrics.counter("tandem.dp0.checkpoints").value == 0
    assert system.sim.metrics.counter("tandem.dp0.ships").value >= 1


def test_dp2_write_latency_beats_dp1():
    dp1 = run_workload(DPMode.DP1)
    dp2 = run_workload(DPMode.DP2)
    dp1_latency = dp1.sim.metrics.histogram("tandem.write_latency").mean
    dp2_latency = dp2.sim.metrics.histogram("tandem.write_latency").mean
    assert dp2_latency < dp1_latency / 1.5


def test_dp2_sends_fewer_messages():
    dp1 = run_workload(DPMode.DP1)
    dp2 = run_workload(DPMode.DP2)
    assert (
        dp2.sim.metrics.counter("net.sent").value
        < dp1.sim.metrics.counter("net.sent").value
    )


def test_dp2_ships_batch_multiple_records():
    system = run_workload(DPMode.DP2, writes_per_txn=8, txns=5)
    ships = system.sim.metrics.counter("tandem.dp0.ships").value
    records = system.sim.metrics.counter("tandem.dp0.shipped_records").value
    assert records / ships > 1.5  # the bus carries more than one rider
