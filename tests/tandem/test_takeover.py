"""Takeover semantics: the §3.3 "acceptable erosion of behavior".

DP1 (1984): a primary crash is transparent — in-flight transactions
continue, because every acked WRITE was checkpointed.
DP2 (1986): a primary crash aborts in-flight transactions that used the
pair — but never a committed one.
"""

import pytest

from repro.errors import TransactionAborted
from repro.tandem import DPMode, TandemConfig, TandemSystem, TxnStatus


def make_system(mode, seed=1):
    return TandemSystem(TandemConfig(mode=mode, num_dps=2), seed=seed)


def test_dp1_inflight_transaction_survives_takeover():
    system = make_system(DPMode.DP1)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        aborted = system.crash_primary("dp0")
        assert aborted == []
        yield from client.write(txn, "dp0", "y", 2)
        yield from client.commit(txn)
        reader = client.begin()
        x = yield from client.read(reader, "dp0", "x")
        y = yield from client.read(reader, "dp0", "y")
        return (x, y)

    assert system.sim.run_process(job()) == (1, 2)


def test_dp2_inflight_transaction_aborted_by_takeover():
    system = make_system(DPMode.DP2)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        aborted = system.crash_primary("dp0")
        assert aborted == [txn.id]
        try:
            yield from client.commit(txn)
        except TransactionAborted:
            return "aborted"
        return "committed"

    assert system.sim.run_process(job()) == "aborted"


def test_dp2_committed_transaction_survives_takeover():
    system = make_system(DPMode.DP2)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 42)
        yield from client.commit(txn)
        system.crash_primary("dp0")
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 42


def test_dp1_committed_transaction_survives_takeover():
    system = make_system(DPMode.DP1)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 42)
        yield from client.commit(txn)
        system.crash_primary("dp0")
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 42


def test_dp2_takeover_only_aborts_transactions_at_failed_pair():
    system = make_system(DPMode.DP2)
    client = system.client()

    def job():
        touches_dp0 = client.begin()
        only_dp1 = client.begin()
        yield from client.write(touches_dp0, "dp0", "a", 1)
        yield from client.write(only_dp1, "dp1", "b", 2)
        aborted = system.crash_primary("dp0")
        assert aborted == [touches_dp0.id]
        yield from client.commit(only_dp1)
        return system.registry.status(only_dp1.id)

    assert system.sim.run_process(job()) is TxnStatus.COMMITTED


def test_dp2_multi_dp_transaction_aborts_everywhere():
    """A txn that dirtied dp0 and dp1 aborts when dp0's primary dies; its
    pending writes at dp1 must be discarded too."""
    system = make_system(DPMode.DP2)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "a", 1)
        yield from client.write(txn, "dp1", "b", 2)
        system.crash_primary("dp0")
        try:
            yield from client.commit(txn)
        except TransactionAborted:
            pass
        reader = client.begin()
        b = yield from client.read(reader, "dp1", "b")
        return b

    assert system.sim.run_process(job()) is None


def test_write_after_takeover_goes_to_new_primary():
    system = make_system(DPMode.DP2)
    client = system.client()
    pair = system.pair("dp0")
    original_primary = pair.current

    def job():
        system.crash_primary("dp0")
        assert pair.current != original_primary
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 7)
        yield from client.commit(txn)
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 7


def test_reintegrate_restores_backup():
    system = make_system(DPMode.DP2)
    client = system.client()
    pair = system.pair("dp0")

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.commit(txn)
        system.crash_primary("dp0")
        pair.reintegrate()
        assert pair.backup_alive
        # And the pair survives a second takeover.
        txn2 = client.begin()
        yield from client.write(txn2, "dp0", "y", 2)
        yield from client.commit(txn2)
        system.crash_primary("dp0")
        reader = client.begin()
        x = yield from client.read(reader, "dp0", "x")
        y = yield from client.read(reader, "dp0", "y")
        return (x, y)

    assert system.sim.run_process(job()) == (1, 2)


def test_committed_never_lost_invariant():
    for mode in (DPMode.DP1, DPMode.DP2):
        system = make_system(mode)
        client = system.client()

        def job():
            for i in range(5):
                txn = client.begin()
                yield from client.write(txn, "dp0", f"k{i}", i)
                try:
                    yield from client.commit(txn)
                except TransactionAborted:
                    pass
                if i == 2:
                    system.crash_primary("dp0")
                    system.pair("dp0").reintegrate()

        system.sim.run_process(job())
        assert system.committed_durable()
