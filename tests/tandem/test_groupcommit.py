"""Standalone group commit: batching reduces work; under load it reduces
latency too (the §3.2 bus-vs-car claim)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Timeout
from repro.storage import Disk
from repro.tandem import GroupCommitter


def run_offered_load(timer, arrivals=200, inter_arrival=0.001, seed=5):
    sim = Simulator(seed=seed)
    disk = Disk(sim, service_time=0.005, per_item_time=0.0001)
    committer = GroupCommitter(sim, disk, timer=timer)

    def arrival_process():
        rng = sim.rng.stream("arrivals")
        for _ in range(arrivals):
            yield Timeout(rng.expovariate(1.0 / inter_arrival))
            sim.spawn(committer.commit())

    sim.spawn(arrival_process())
    sim.run()
    return sim


def test_negative_timer_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        GroupCommitter(sim, Disk(sim), timer=-1.0)


def test_single_commit_unbatched():
    sim = Simulator()
    committer = GroupCommitter(sim, Disk(sim, service_time=0.005), timer=None)

    def job():
        latency = yield from committer.commit()
        return latency

    assert sim.run_process(job()) == pytest.approx(0.0051)


def test_single_commit_batched_pays_the_timer():
    sim = Simulator()
    committer = GroupCommitter(sim, Disk(sim, service_time=0.005), timer=0.002)

    def job():
        latency = yield from committer.commit()
        return latency

    assert sim.run_process(job()) == pytest.approx(0.002 + 0.005 + 0.0001)


def test_bus_batches_concurrent_commits():
    sim = Simulator()
    disk = Disk(sim, service_time=0.005)
    committer = GroupCommitter(sim, disk, timer=0.002)
    for _ in range(10):
        sim.spawn(committer.commit())
    sim.run()
    assert sim.metrics.counter("groupcommit.busses").value == 1
    assert sim.metrics.counter("groupcommit.riders").value == 10


def test_under_load_batching_beats_car_per_driver():
    """At arrivals faster than the disk can serve individually, the bus
    reduces mean latency — the paper's counterintuitive claim."""
    car = run_offered_load(timer=None)
    bus = run_offered_load(timer=0.002)
    car_mean = car.metrics.histogram("groupcommit.latency").mean
    bus_mean = bus.metrics.histogram("groupcommit.latency").mean
    assert bus_mean < car_mean / 2


def test_when_idle_car_beats_bus():
    """At trivial load the bus only adds its timer."""
    car = run_offered_load(timer=None, arrivals=20, inter_arrival=0.1)
    bus = run_offered_load(timer=0.002, arrivals=20, inter_arrival=0.1)
    car_mean = car.metrics.histogram("groupcommit.latency").mean
    bus_mean = bus.metrics.histogram("groupcommit.latency").mean
    assert car_mean < bus_mean
