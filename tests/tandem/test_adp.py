"""Audit Disk Process unit behaviour."""

from repro.net import Endpoint, Network
from repro.sim import Simulator
from repro.tandem import AuditDiskProcess, TmfRegistry, TxnStatus


def make_adp(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    registry = TmfRegistry()
    adp = AuditDiskProcess(sim, net, registry)
    client = Endpoint(net, "client")
    client.start()
    return sim, adp, registry, client


def test_log_batch_becomes_durable():
    sim, adp, _registry, client = make_adp()

    def run():
        yield from client.call("adp", "LOG", {
            "source": "dp0",
            "records": [
                {"lsn": 1, "kind": "WRITE", "txn": 1, "key": "x", "value": 1},
                {"lsn": 2, "kind": "WRITE", "txn": 1, "key": "y", "value": 2},
            ],
        })

    sim.run_process(run())
    records = adp.durable_records_for("dp0")
    assert [r["lsn"] for r in records] == [1, 2]


def test_records_partitioned_by_source():
    sim, adp, _registry, client = make_adp()

    def run():
        yield from client.call("adp", "LOG", {
            "source": "dp0",
            "records": [{"lsn": 1, "kind": "WRITE", "txn": 1, "key": "x", "value": 1}],
        })
        yield from client.call("adp", "LOG", {
            "source": "dp1",
            "records": [{"lsn": 1, "kind": "WRITE", "txn": 2, "key": "z", "value": 9}],
        })

    sim.run_process(run())
    assert len(adp.durable_records_for("dp0")) == 1
    assert len(adp.durable_records_for("dp1")) == 1


def test_commit_decides_and_marks_registry():
    sim, adp, registry, client = make_adp()
    txn = registry.new_txn()

    def run():
        yield from client.call("adp", "COMMIT", {"txn": txn})

    sim.run_process(run())
    assert txn in adp.committed_txns()
    assert registry.status(txn) is TxnStatus.COMMITTED


def test_commit_retry_idempotent():
    sim, adp, registry, client = make_adp()
    txn = registry.new_txn()

    def run():
        yield from client.call("adp", "COMMIT", {"txn": txn})
        yield from client.call("adp", "COMMIT", {"txn": txn})

    sim.run_process(run())
    assert len(adp.committed_txns()) == 1


def test_log_rewrite_same_lsn_overwrites_not_duplicates():
    sim, adp, _registry, client = make_adp()
    record = {"lsn": 5, "kind": "WRITE", "txn": 3, "key": "x", "value": 1}

    def run():
        yield from client.call("adp", "LOG", {"source": "dp0", "records": [record]})
        yield from client.call("adp", "LOG", {"source": "dp0", "records": [record]})

    sim.run_process(run())
    assert len(adp.durable_records_for("dp0")) == 1
