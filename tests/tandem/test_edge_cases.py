"""Tandem edge cases: empty transactions, zero timers, contention,
reads around aborts."""

import pytest

from repro.errors import TransactionAborted
from repro.tandem import DPMode, TandemConfig, TandemSystem


def test_commit_empty_transaction():
    for mode in (DPMode.DP1, DPMode.DP2):
        system = TandemSystem(TandemConfig(mode=mode, num_dps=1), seed=1)
        client = system.client()

        def job():
            txn = client.begin()
            yield from client.commit(txn)  # no writes anywhere
            return txn.id

        txn_id = system.sim.run_process(job())
        assert txn_id in system.adp.committed_txns()


def test_zero_group_commit_timer():
    system = TandemSystem(
        TandemConfig(mode=DPMode.DP2, num_dps=1, group_commit_timer=0.0), seed=1
    )
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.commit(txn)
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 1


def test_read_after_abort_sees_nothing():
    system = TandemSystem(TandemConfig(mode=DPMode.DP2, num_dps=1), seed=1)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.abort(txn)
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) is None


def test_write_to_aborted_transaction_rejected():
    system = TandemSystem(TandemConfig(mode=DPMode.DP2, num_dps=1), seed=1)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.abort(txn)
        try:
            yield from client.write(txn, "dp0", "y", 2)
        except TransactionAborted:
            return "refused"
        return "accepted"

    assert system.sim.run_process(job()) == "refused"


def test_many_concurrent_clients_one_pair():
    system = TandemSystem(TandemConfig(mode=DPMode.DP2, num_dps=1), seed=1)
    clients = [system.client() for _ in range(8)]
    done = []

    def job(client, tag):
        txn = client.begin()
        yield from client.write(txn, "dp0", f"key-{tag}", tag)
        yield from client.commit(txn)
        done.append(tag)

    for index, client in enumerate(clients):
        system.sim.spawn(job(client, index))
    system.sim.run()
    assert sorted(done) == list(range(8))
    state = system.pair("dp0").state()
    assert all(state.committed.get(f"key-{i}") == i for i in range(8))


def test_last_writer_wins_within_transaction():
    system = TandemSystem(TandemConfig(mode=DPMode.DP2, num_dps=1), seed=1)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.write(txn, "dp0", "x", 2)
        yield from client.commit(txn)
        reader = client.begin()
        value = yield from client.read(reader, "dp0", "x")
        return value

    assert system.sim.run_process(job()) == 2


def test_voluntary_abort_allowed_by_the_rules():
    """§3.3: transactions may abort without cause — the metric exists and
    the registry agrees."""
    system = TandemSystem(TandemConfig(mode=DPMode.DP1, num_dps=1), seed=1)
    client = system.client()

    def job():
        txn = client.begin()
        yield from client.write(txn, "dp0", "x", 1)
        yield from client.abort(txn)

    system.sim.run_process(job())
    assert system.sim.metrics.counter("tandem.aborts").value == 1
    assert system.registry.counts()["aborted"] == 1
