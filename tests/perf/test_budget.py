"""Perf smoke: throughput floors and allocation budgets for the kernel.

Marked ``slow`` — these run real (reduced-scale) workloads. The floors
are deliberately an order of magnitude below what the optimized kernel
does on a quiet machine: they exist to catch "someone put an O(n) scan
or an eager format back on the hot path", not to measure the hardware.
The allocation budgets are tighter because tracemalloc numbers are
deterministic for a deterministic workload.
"""

import tracemalloc

import pytest

from repro.perf.workloads import WORKLOADS, sched_churn
from repro.sim import Simulator
from repro.sim.trace import TraceRecord

pytestmark = pytest.mark.slow

# events/sec floors, ~10x below measured rates on one shared CPU core
# (sched_churn measured ~2.5M ev/s after the fast-lane kernel landed).
_FLOORS = {
    "sched_churn": 250_000,
    "rpc_ping": 10_000,
    "tandem_cadence": 8_000,
}

# Scales chosen so each timed check stays around a second even at floor.
_SCALES = {
    "sched_churn": 100_000,
    "rpc_ping": 1_000,
    "tandem_cadence": 200,
}


@pytest.mark.parametrize("name", sorted(_FLOORS))
def test_events_per_sec_floor(name):
    import time

    workload = WORKLOADS[name]
    scale = _SCALES[name]
    workload.fn(scale)  # warm-up: imports, first-call caches
    start = time.perf_counter()
    run = workload.fn(scale)
    wall = time.perf_counter() - start
    rate = run.events / wall
    assert rate >= _FLOORS[name], (
        f"{name}: {rate:,.0f} ev/s under floor {_FLOORS[name]:,} "
        f"({run.events} events in {wall:.3f}s)"
    )


def test_scheduler_allocates_no_objects_per_event():
    """The kernel itself must not allocate tracked objects per executed
    event beyond the scheduled tuples — run a churn workload under
    tracemalloc and bound peak bytes per event."""
    tracemalloc.start()
    run = sched_churn(20_000)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    per_event = peak / run.events
    # Tuples in the heap/lane plus transient frame objects; a regression
    # to unslotted records or eager formatting blows well past this.
    assert per_event < 200, f"{per_event:.0f} peak bytes/event"


def test_trace_record_is_slotted_and_small():
    record = TraceRecord(1.0, "actor", "kind", {"k": 1})
    assert not hasattr(record, "__dict__")
    tracemalloc.start()
    records = [TraceRecord(float(i), "a", "k", {"i": i}) for i in range(1000)]
    size, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    per_record = size / len(records)
    assert per_record < 400, f"{per_record:.0f} bytes/record"


def test_bounded_trace_memory_is_flat():
    """With a capacity bound, emitting 10x capacity must not grow the
    trace's footprint past the bound's worth of records."""
    sim = Simulator(trace_capacity=1_000)
    for i in range(1_000):
        sim.trace.emit("a", "tick", i=i)
    tracemalloc.start()
    for i in range(10_000):
        sim.trace.emit("a", "tick", i=i)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(sim.trace.records) == 1_000
    assert sim.trace.dropped == 10_000
    # Steady-state churn: each emit allocates one record and frees one,
    # so peak tracked growth stays near one capacity's worth of payload
    # ints — nowhere near the ~1.5 MB that 10k retained records would be.
    assert peak < 192 * 1024, f"peak {peak} bytes while at capacity"
