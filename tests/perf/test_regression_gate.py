"""The BENCH_sim.json regression gates: wall-time floor and heap ceiling."""

from repro.perf.harness import (
    BenchReport,
    WorkloadResult,
    check_heap_regression,
    check_regression,
)


def _result(name, events_per_sec=1000.0, heap_per_event=100.0):
    return WorkloadResult(
        name=name,
        description="synthetic",
        scale=10,
        events=100,
        wall_s=0.1,
        events_per_sec=events_per_sec,
        peak_heap_bytes=int(heap_per_event * 100),
        peak_heap_bytes_per_event=heap_per_event,
        trace_overhead_frac=None,
    )


def _baseline(**workloads):
    return {"workloads": {
        name: {"events_per_sec": rate, "peak_heap_bytes_per_event": heap}
        for name, (rate, heap) in workloads.items()
    }}


def test_wall_gate_passes_within_floor():
    report = BenchReport("quick", [_result("w", events_per_sec=750.0)])
    assert check_regression(report, _baseline(w=(1000.0, 100.0))) == []


def test_wall_gate_fails_below_floor():
    report = BenchReport("quick", [_result("w", events_per_sec=600.0)])
    failures = check_regression(report, _baseline(w=(1000.0, 100.0)))
    assert len(failures) == 1 and "w" in failures[0]


def test_heap_gate_passes_within_ceiling():
    report = BenchReport("quick", [_result("w", heap_per_event=125.0)])
    assert check_heap_regression(report, _baseline(w=(1000.0, 100.0))) == []


def test_heap_gate_fails_beyond_ceiling():
    report = BenchReport("quick", [_result("w", heap_per_event=135.0)])
    failures = check_heap_regression(report, _baseline(w=(1000.0, 100.0)))
    assert len(failures) == 1 and "w" in failures[0]


def test_heap_gate_ignores_improvements():
    report = BenchReport("quick", [_result("w", heap_per_event=10.0)])
    assert check_heap_regression(report, _baseline(w=(1000.0, 100.0))) == []


def test_new_workloads_are_not_regressions():
    """Both gates skip workloads the baseline has never measured."""
    report = BenchReport("quick", [_result("brand_new")])
    baseline = _baseline(other=(1000.0, 100.0))
    assert check_regression(report, baseline) == []
    assert check_heap_regression(report, baseline) == []


def test_zero_baseline_entries_skipped():
    report = BenchReport("quick", [_result("w")])
    baseline = _baseline(w=(0.0, 0.0))
    assert check_regression(report, baseline) == []
    assert check_heap_regression(report, baseline) == []


def test_checked_in_baseline_has_heap_numbers():
    """BENCH_sim.json itself must stay gateable: every workload entry
    carries the fields both gates read."""
    import json

    with open("BENCH_sim.json") as fh:
        baseline = json.load(fh)
    assert baseline["workloads"], "empty baseline"
    for name, entry in baseline["workloads"].items():
        assert entry.get("events_per_sec", 0) > 0, name
        assert entry.get("peak_heap_bytes_per_event", 0) > 0, name
