"""Regenerate the golden fixtures. Only legitimate when the simulator's
trace semantics change *on purpose*; optimizations must never need this.

    PYTHONPATH=src python -m tests.golden.capture
"""

from __future__ import annotations

from tests.golden.scenarios import FIXTURES, GOLDEN_RUNS, fixture_paths


def main() -> None:
    FIXTURES.mkdir(exist_ok=True)
    for name, run in GOLDEN_RUNS.items():
        trace, counters = run()
        trace_path, counters_path = fixture_paths(name)
        trace_path.write_text(trace)
        counters_path.write_text(counters)
        print(f"captured {name}: {len(trace.splitlines())} trace lines")


if __name__ == "__main__":
    main()
