"""Golden-trace regression tests: the kernel is bit-for-bit neutral.

Each test replays one frozen seeded run (bank clearing under a chaos
plan, Dynamo cart under a chaos plan, Tandem DP2 with a mid-run primary
crash) and asserts the rendered trace and final metric counters are
*byte-identical* to fixtures captured before the perf overhaul. This is
what lets lazy trace formatting, the batched drain loop, the network
fast path, and multiprocessing sweeps land without a determinism review
of every call site.
"""

import pytest

from tests.golden.scenarios import GOLDEN_RUNS, fixture_paths


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_golden_run_is_bit_identical(name):
    trace_path, counters_path = fixture_paths(name)
    assert trace_path.exists(), (
        f"missing fixture {trace_path}; run `python -m tests.golden.capture`"
    )
    trace, counters = GOLDEN_RUNS[name]()
    expected_trace = trace_path.read_text()
    expected_counters = counters_path.read_text()
    assert counters == expected_counters
    # Compare line-by-line first for a readable diff on failure.
    got_lines = trace.splitlines()
    want_lines = expected_trace.splitlines()
    for index, (got, want) in enumerate(zip(got_lines, want_lines)):
        assert got == want, f"{name}: trace line {index} diverged"
    assert len(got_lines) == len(want_lines)
    assert trace == expected_trace
