"""Seeded runs whose rendered traces are frozen as golden fixtures.

The fixtures under ``tests/golden/fixtures/`` were captured from the
kernel *before* the perf overhaul (lazy trace formatting, batched drain
loop, network fast path). Every kernel optimization must keep these runs
bit-identical: same rendered trace lines, same final counters, same end
time. If a fixture ever needs regenerating, that is a semantic change to
the simulator and needs to be called out loudly in review:

    PYTHONPATH=src python -m tests.golden.capture
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Tuple

from repro.chaos.scenarios import BankClearingScenario, CartDynamoScenario
from repro.errors import TransactionAborted
from repro.logship import LogShippingSystem, ShipMode
from repro.net.latency import FixedLatency
from repro.net.network import LinkConfig
from repro.net.topology import Site, Topology, TopologyNetwork, WanLink
from repro.sim.events import Timeout
from repro.sim.scheduler import Simulator
from repro.tandem import TandemConfig, TandemSystem

FIXTURES = Path(__file__).parent / "fixtures"


def render_trace(sim: Any) -> str:
    """The canonical rendered form of a run's trace: one repr per record,
    then the eviction count and final clock. This is what must stay
    bit-identical across kernel optimizations."""
    lines = [repr(record) for record in sim.trace.records]
    lines.append(f"dropped={sim.trace.dropped}")
    lines.append(f"end={sim.now:.6g}")
    return "\n".join(lines) + "\n"


def render_counters(counters: Dict[str, float]) -> str:
    return json.dumps(counters, sort_keys=True, indent=1) + "\n"


# ----------------------------------------------------------------------
# The three frozen runs


def run_bank(seed: int = 7) -> Tuple[str, str]:
    scenario = BankClearingScenario(policy="correct")
    plan = scenario.spec().sample(seed)
    report = scenario.run(seed, plan)
    return render_trace(scenario._sim), render_counters(report.counters)


def run_cart(seed: int = 11) -> Tuple[str, str]:
    scenario = CartDynamoScenario(policy="correct")
    plan = scenario.spec().sample(seed)
    report = scenario.run(seed, plan)
    return render_trace(scenario._sim), render_counters(report.counters)


def run_tandem(seed: int = 3) -> Tuple[str, str]:
    system = TandemSystem(TandemConfig(mode="dp2", num_dps=2), seed=seed)
    sim = system.sim
    client = system.client()
    rng = sim.rng.stream("golden.tandem")

    def job():
        for i in range(25):
            txn = client.begin()
            try:
                yield from client.write(txn, f"dp{i % 2}", f"k{i % 5}", i)
                if rng.random() < 0.3:
                    yield from client.write(txn, f"dp{(i + 1) % 2}", f"j{i % 3}", i)
                yield from client.commit(txn)
            except TransactionAborted:
                sim.metrics.inc("golden.aborted")
            yield Timeout(0.002 * rng.uniform(0.5, 1.5))

    def saboteur():
        yield Timeout(0.03)
        aborted = system.crash_primary("dp0")
        sim.metrics.inc("golden.crash_aborts", len(aborted))

    sim.spawn(job(), name="golden.tandem.job")
    sim.spawn(saboteur(), name="golden.tandem.saboteur")
    sim.run(until=1.0)
    counters = sim.metrics.counters()
    counters["golden.committed_durable"] = float(system.committed_durable())
    return render_trace(sim), render_counters(counters)


def run_recovery(seed: int = 5) -> Tuple[str, str]:
    """The frozen recovery story: commits under a running snapshotter,
    fail-over (east crashes cold), a few txns in the new regime, then
    east rejoins — snapshot load, tail replay, CATCHUP re-ship. The trace
    pins the whole checkpoint/recover/rejoin path bit-for-bit."""
    system = LogShippingSystem(
        ship_interval=0.02, seed=seed, snapshot_cadence=0.4
    )
    sim = system.sim

    def job():
        for i in range(20):
            yield from system.submit({f"k{i % 5}": i})
            yield Timeout(0.05)
        # Crash before the next checkpoint fires, so recovery replays a
        # real WAL tail past the last covered LSN.
        yield Timeout(0.05)
        system.fail_over()
        for i in range(3):
            yield from system.submit({f"post{i}": i})
            yield Timeout(0.05)
        result = yield from system.rejoin("east")
        sim.metrics.inc("golden.tail_replayed", result["replayed_records"])
        yield Timeout(2.0)

    sim.run_process(job())
    counters = sim.metrics.counters()
    counters["golden.states_match"] = float(
        system.backup.state == system.primary.state
    )
    return render_trace(sim), render_counters(counters)


def run_geo(seed: int = 13) -> Tuple[str, str]:
    """The frozen two-datacenter run: log shipping across a
    :class:`TopologyNetwork` (east in one site, west + client in the
    other), a scripted WAN cut mid-stream, writes acked locally while
    shipping retries into the cut, then heal and drain. Pins the
    site-routed latency path, the site-pair fault overlay, and the
    bandwidth pipe bit-for-bit."""
    sim = Simulator(seed=seed)
    lan = FixedLatency(0.0005)
    topology = Topology(
        [Site("dc-a", lan=lan), Site("dc-b", lan=lan)],
        default_wan=WanLink(FixedLatency(0.02), bandwidth=500.0),
    )
    network = TopologyNetwork(
        sim, topology, default_link=LinkConfig(latency=FixedLatency(0.001))
    )
    system = LogShippingSystem(
        mode=ShipMode.ASYNC, ship_interval=0.02, sim=sim, network=network
    )
    topology.place("east", "dc-a")
    topology.place_all(("west", "lsclient"), "dc-b")

    def job():
        for i in range(6):
            yield from system.submit({f"k{i % 3}": i})
            yield Timeout(0.05)
        faults = network.cut_sites("dc-a", "dc-b")
        for i in range(6, 12):
            yield from system.submit({f"k{i % 3}": i})
            yield Timeout(0.05)
        network.heal_sites(faults)
        yield Timeout(2.0)

    sim.run_process(job())
    counters = sim.metrics.counters()
    counters["golden.states_match"] = float(
        system.backup.state == system.primary.state
    )
    return render_trace(sim), render_counters(counters)


GOLDEN_RUNS = {
    "bank_seed7": run_bank,
    "cart_seed11": run_cart,
    "geo_seed13": run_geo,
    "recovery_seed5": run_recovery,
    "tandem_seed3": run_tandem,
}


def fixture_paths(name: str) -> Tuple[Path, Path]:
    return FIXTURES / f"{name}.trace.txt", FIXTURES / f"{name}.counters.json"
