"""The §5.4 scenario: over-enthusiastic replicas, collapsed duplicates."""

import pytest

from repro.errors import SimulationError
from repro.workflow import WorkItem, WorkflowSystem


def purchase_order_stages():
    """order -> ship -> invoice."""
    shipments = []
    invoices = []

    def handle_order(item):
        return f"accepted {item.uniquifier}", [item.child("ship")]

    def handle_ship(item):
        shipments.append(item.uniquifier)
        return f"shipped {item.payload.get('sku')}", [item.child("invoice")]

    def handle_invoice(item):
        invoices.append(item.uniquifier)
        return "invoiced", []

    stages = {"order": handle_order, "ship": handle_ship, "invoice": handle_invoice}
    return stages, shipments, invoices


def test_single_replica_runs_the_chain():
    stages, shipments, invoices = purchase_order_stages()
    system = WorkflowSystem(["east"], stages)
    system.submit("east", WorkItem("po-1", "order", {"sku": "book"}))
    assert system.logical_executions() == 3  # order, ship, invoice
    assert shipments == ["po-1/ship#0"]
    assert invoices == ["po-1/ship#0/invoice#0"]


def test_retry_same_uniquifier_is_noop():
    stages, shipments, _ = purchase_order_stages()
    system = WorkflowSystem(["east"], stages)
    po = WorkItem("po-1", "order", {"sku": "book"})
    system.submit("east", po)
    system.submit("east", po.resubmission())
    assert shipments == ["po-1/ship#0"]
    assert system.physical_executions() == 3


def test_two_enthusiastic_replicas_collapse_on_sync():
    """Both replicas process the same PO while disconnected: the shipment
    is physically scheduled twice, but the derived identity lets the sync
    detect and collapse the redundancy (§5.4)."""
    stages, shipments, _ = purchase_order_stages()
    system = WorkflowSystem(["east", "west"], stages)
    po = WorkItem("po-1", "order", {"sku": "book"})
    system.submit("east", po)
    system.submit("west", po)  # the retry landed elsewhere
    assert len(shipments) == 2  # irrational exuberance: two real shipments
    system.sync_all()
    assert system.redundant_detected >= 1
    assert system.logical_executions() == 3
    assert system.effective_exactly_once()


def test_informed_replica_does_not_duplicate():
    """If the replicas talk *before* the retry arrives, the second replica
    recognizes the work and does nothing."""
    stages, shipments, _ = purchase_order_stages()
    system = WorkflowSystem(["east", "west"], stages)
    po = WorkItem("po-1", "order", {"sku": "book"})
    system.submit("east", po)
    system.sync("east", "west")
    system.submit("west", po)
    assert len(shipments) == 1
    assert system.physical_executions() == 3


def test_queued_duplicate_killed_by_learning():
    stages, shipments, _ = purchase_order_stages()
    system = WorkflowSystem(["east", "west"], stages)
    po = WorkItem("po-1", "order", {"sku": "book"})
    system.submit("east", po)
    west = system.replica("west")
    west.submit(po)            # queued, not yet drained
    system.sync("east", "west")  # west learns the whole chain first
    assert west.drain() == 0     # the queued duplicate dies quietly
    assert len(shipments) == 1


def test_distinct_orders_do_not_collide():
    stages, shipments, _ = purchase_order_stages()
    system = WorkflowSystem(["east", "west"], stages)
    system.submit("east", WorkItem("po-1", "order", {"sku": "book"}))
    system.submit("west", WorkItem("po-2", "order", {"sku": "pen"}))
    system.sync_all()
    assert len(shipments) == 2
    assert system.redundant_detected == 0
    assert system.logical_executions() == 6


def test_unknown_stage_raises():
    system = WorkflowSystem(["east"], {})
    with pytest.raises(SimulationError):
        system.submit("east", WorkItem("x", "nowhere"))


def test_converged_records_after_sync():
    stages, _, _ = purchase_order_stages()
    system = WorkflowSystem(["a", "b", "c"], stages)
    system.submit("a", WorkItem("po-1", "order", {}))
    system.submit("b", WorkItem("po-2", "order", {}))
    system.sync_all()
    keys = [set(r.records) for r in system.replicas.values()]
    assert keys[0] == keys[1] == keys[2]
    assert system.effective_exactly_once()
