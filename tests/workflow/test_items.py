"""Work items: derived identities, resubmission semantics."""

import pytest

from repro.errors import SimulationError
from repro.workflow import WorkItem, derive_child_uniquifier


def test_uniquifier_required():
    with pytest.raises(SimulationError):
        WorkItem(uniquifier="", stage="order")


def test_child_identity_is_functionally_dependent():
    po = WorkItem(uniquifier="po-7", stage="order", payload={"sku": "book"})
    ship_a = po.child("ship")
    ship_b = po.child("ship")
    assert ship_a.uniquifier == ship_b.uniquifier == "po-7/ship#0"
    assert ship_a.parent == "po-7"


def test_child_indices_distinguish_siblings():
    po = WorkItem(uniquifier="po-7", stage="order")
    first = po.child("ship", index=0)
    second = po.child("ship", index=1)
    assert first.uniquifier != second.uniquifier


def test_derive_is_pure():
    assert derive_child_uniquifier("x", "s", 2) == derive_child_uniquifier("x", "s", 2)


def test_child_payload_defaults_to_parent():
    po = WorkItem(uniquifier="po-7", stage="order", payload={"sku": "book"})
    assert po.child("ship").payload == {"sku": "book"}
    assert po.child("ship", payload={"carrier": "rail"}).payload == {"carrier": "rail"}


def test_resubmission_is_the_same_item():
    po = WorkItem(uniquifier="po-7", stage="order")
    assert po.resubmission() == po
