"""CircuitBreaker: the state machine, unit- and property-tested.

The two properties the ISSUE pins down:

- the breaker **never half-opens early** — no call passes while open
  until ``recovery_time`` of simulated time has elapsed;
- it **always recloses after success probes** — from any reachable
  state, waiting out the cool-off and answering every probe with a
  success returns it to closed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import BreakerConfig, BreakerState, CircuitBreaker
from repro.resilience.breaker import BreakerBoard


class _Clock:
    """The slice of Simulator a breaker needs: a clock, counters, traces."""

    def __init__(self) -> None:
        self.now = 0.0
        self.counters = {}
        self.events = []
        self.metrics = self
        self.trace = self

    def inc(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value

    def emit(self, *args, **kwargs):
        self.events.append((args, kwargs))


def make_breaker(**kwargs):
    clock = _Clock()
    config = BreakerConfig(**kwargs)
    return clock, CircuitBreaker(clock, "client", "server", config)


# ----------------------------------------------------------------------
# Unit tests: the documented lifecycle


def test_trips_after_consecutive_failures_only():
    clock, breaker = make_breaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()          # success resets the streak
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert clock.counters["resilience.breaker.client.open"] == 1


def test_open_short_circuits_until_cooloff():
    clock, breaker = make_breaker(failure_threshold=1, recovery_time=2.0)
    breaker.record_failure()
    assert not breaker.allow()
    assert not breaker.would_allow()
    clock.now = 1.999
    assert not breaker.allow()
    assert clock.counters["resilience.breaker.client.short_circuits"] == 2
    clock.now = 2.0
    assert breaker.would_allow()
    assert breaker.allow()
    assert breaker.state is BreakerState.HALF_OPEN


def test_half_open_bounds_concurrent_probes():
    clock, breaker = make_breaker(failure_threshold=1, half_open_probes=2)
    breaker.record_failure()
    clock.now = 10.0
    assert breaker.allow() and breaker.allow()
    assert not breaker.allow()        # both probe slots taken
    breaker.record_success()          # one probe lands, frees its slot
    assert breaker.allow()


def test_probe_success_recloses_probe_failure_reopens():
    clock, breaker = make_breaker(
        failure_threshold=1, recovery_time=1.0, success_threshold=2,
    )
    breaker.record_failure()
    clock.now = 1.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.HALF_OPEN   # needs 2 successes
    assert breaker.allow()
    breaker.record_failure()                          # probe failed: re-open
    assert breaker.state is BreakerState.OPEN
    assert breaker.opened_at == 1.0                   # cool-off clock restarted
    clock.now = 2.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


def test_stale_success_while_open_is_ignored():
    clock, breaker = make_breaker(failure_threshold=1)
    breaker.record_failure()
    breaker.record_success()          # late reply from before the trip
    assert breaker.state is BreakerState.OPEN
    assert not breaker.allow()


def test_would_allow_takes_no_probe_slot():
    clock, breaker = make_breaker(failure_threshold=1, half_open_probes=1)
    breaker.record_failure()
    clock.now = 10.0
    assert breaker.would_allow() and breaker.would_allow()
    assert breaker.state is BreakerState.OPEN         # peeking never transitions
    assert breaker.allow()
    assert not breaker.allow()                        # the one real slot is taken


def test_board_is_per_destination():
    clock = _Clock()
    board = BreakerBoard(clock, "client", BreakerConfig(failure_threshold=1))
    board.for_dst("a").record_failure()
    assert board.for_dst("a").state is BreakerState.OPEN
    assert board.for_dst("b").state is BreakerState.CLOSED
    assert board.states() == {"a": BreakerState.OPEN, "b": BreakerState.CLOSED}


# ----------------------------------------------------------------------
# Property tests: arbitrary interleavings of calls, outcomes, and time

CONFIG = dict(
    failure_threshold=3, recovery_time=1.0,
    half_open_probes=2, success_threshold=2,
)

_ops = st.lists(
    st.one_of(
        st.sampled_from(["allow", "success", "failure"]),
        st.floats(min_value=0.05, max_value=1.5),   # advance the clock
    ),
    max_size=80,
)


def _drive(breaker, clock, op):
    if isinstance(op, float):
        clock.now += op
    elif op == "allow":
        breaker.allow()
    elif op == "success":
        breaker.record_success()
    else:
        breaker.record_failure()


@given(_ops)
@settings(max_examples=150, deadline=None)
def test_never_half_opens_early(ops):
    clock, breaker = make_breaker(**CONFIG)
    for op in ops:
        before, opened_at = breaker.state, breaker.opened_at
        _drive(breaker, clock, op)
        if before is BreakerState.OPEN and breaker.state is not BreakerState.OPEN:
            # The only way out of OPEN is the cool-off elapsing. Sum-form
            # on both sides: (now - opened_at) can round below a cool-off
            # that did fully elapse.
            assert breaker.state is BreakerState.HALF_OPEN
            assert clock.now >= opened_at + CONFIG["recovery_time"]
        if (
            op == "allow"
            and before is BreakerState.OPEN
            and clock.now < opened_at + CONFIG["recovery_time"]
        ):
            assert breaker.state is BreakerState.OPEN
        assert 0 <= breaker.probes_inflight <= CONFIG["half_open_probes"]


@given(_ops)
@settings(max_examples=150, deadline=None)
def test_always_recloses_after_success_probes(ops):
    clock, breaker = make_breaker(**CONFIG)
    for op in ops:
        _drive(breaker, clock, op)
    # From any reachable state: wait out the cool-off, answer every
    # probe with a success, and the breaker must return to CLOSED.
    clock.now += CONFIG["recovery_time"]
    for _ in range(CONFIG["success_threshold"] + CONFIG["half_open_probes"] + 1):
        if breaker.state is BreakerState.CLOSED:
            break
        if breaker.allow():
            breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow()
