"""RetryPolicy: validation, backoff math, and seed-deterministic jitter."""

import pytest

from repro.errors import SimulationError
from repro.resilience import RetryPolicy
from repro.sim import Simulator


def test_legacy_matches_historic_call_knobs():
    policy = RetryPolicy.legacy(timeout=1.0, retries=3)
    assert policy.max_attempts == 4
    assert policy.timeout == 1.0
    assert policy.base_delay == 0.0
    assert policy.jitter == 0.0
    assert policy.deadline is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"timeout": 0.0},
        {"backoff": "quadratic"},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"deadline": 0.0},
    ],
)
def test_validation_rejects_bad_knobs(kwargs):
    with pytest.raises(SimulationError):
        RetryPolicy(**kwargs)


def test_first_attempt_never_waits():
    policy = RetryPolicy(backoff="exponential", base_delay=1.0)
    assert policy.backoff_delay(0) == 0.0


def test_zero_base_delay_means_no_backoff():
    policy = RetryPolicy(max_attempts=5)
    assert policy.schedule() == [0.0, 0.0, 0.0, 0.0]


def test_fixed_backoff_is_constant():
    policy = RetryPolicy(max_attempts=4, backoff="fixed", base_delay=0.5)
    assert policy.schedule() == [0.5, 0.5, 0.5]


def test_exponential_backoff_ramps_and_caps():
    policy = RetryPolicy(
        max_attempts=6, backoff="exponential",
        base_delay=1.0, multiplier=2.0, max_delay=5.0,
    )
    assert policy.schedule() == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_jitter_needs_an_rng():
    policy = RetryPolicy(base_delay=1.0, jitter=0.5)
    with pytest.raises(SimulationError):
        policy.backoff_delay(1)


def test_jitter_stays_in_band_and_is_seed_deterministic():
    policy = RetryPolicy(
        max_attempts=8, backoff="exponential",
        base_delay=1.0, multiplier=2.0, max_delay=8.0, jitter=0.3,
    )
    plain = RetryPolicy(
        max_attempts=8, backoff="exponential",
        base_delay=1.0, multiplier=2.0, max_delay=8.0,
    )
    first = policy.schedule(Simulator(seed=11).rng.stream("resilience.retry"))
    second = policy.schedule(Simulator(seed=11).rng.stream("resilience.retry"))
    other = policy.schedule(Simulator(seed=12).rng.stream("resilience.retry"))
    assert first == second           # same master seed, bit-identical schedule
    assert first != other            # the jitter actually jitters
    for jittered, nominal in zip(first, plain.schedule()):
        assert 0.7 * nominal <= jittered <= 1.3 * nominal


def test_unjittered_policy_draws_no_randomness():
    rng = Simulator(seed=3).rng.stream("resilience.retry")
    state_before = rng.getstate()
    RetryPolicy(max_attempts=5, base_delay=0.5).schedule(rng)
    assert rng.getstate() == state_before
