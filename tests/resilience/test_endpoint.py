"""The resilience stack threaded through Endpoint.call/cast/_dispatch."""

import pytest

from repro.errors import (
    BreakerOpenError,
    DeadlineExceeded,
    ServerBusyError,
    TimeoutError_,
)
from repro.net import Endpoint, FixedLatency, LinkConfig, Network
from repro.resilience import AdmissionConfig, BreakerConfig, RetryPolicy
from repro.sim import Simulator, Timeout


def setup_pair(seed=0, **link_kwargs):
    link_kwargs.setdefault("latency", FixedLatency(0.01))
    sim = Simulator(seed=seed)
    net = Network(sim, default_link=LinkConfig(**link_kwargs))
    server = Endpoint(net, "server", dedup=True)
    client = Endpoint(net, "client")
    server.start()
    client.start()
    return sim, net, server, client


# ----------------------------------------------------------------------
# Policy-driven call: backoff timing, jitter determinism, deadlines


def test_fixed_backoff_timing_is_exact():
    sim, _net, _server, client = setup_pair(loss_probability=1.0)
    policy = RetryPolicy(max_attempts=3, timeout=0.2, base_delay=0.5)

    def run():
        try:
            yield from client.call("server", "x", policy=policy)
        except TimeoutError_:
            return sim.now

    # 0.2 (attempt 1) + 0.5 + 0.2 (attempt 2) + 0.5 + 0.2 (attempt 3)
    assert sim.run_process(run()) == pytest.approx(1.6)


def _jittered_give_up_time(seed):
    sim, _net, _server, client = setup_pair(seed=seed, loss_probability=1.0)
    policy = RetryPolicy(
        max_attempts=4, timeout=0.1,
        backoff="exponential", base_delay=0.5, jitter=0.5,
    )

    def run():
        try:
            yield from client.call("server", "x", policy=policy)
        except TimeoutError_:
            return sim.now

    return sim.run_process(run())


def test_jittered_schedule_is_seed_deterministic():
    assert _jittered_give_up_time(5) == _jittered_give_up_time(5)
    assert _jittered_give_up_time(5) != _jittered_give_up_time(6)


def test_deadline_bounds_the_whole_call():
    sim, _net, _server, client = setup_pair(loss_probability=1.0)
    policy = RetryPolicy(max_attempts=5, timeout=0.4, deadline=0.5)

    def run():
        try:
            yield from client.call("server", "x", policy=policy)
        except DeadlineExceeded:
            return sim.now

    # Attempt 1 burns 0.4, attempt 2 gets the remaining 0.1, attempt 3
    # finds the budget empty — well before 5 x 0.4 of naive timers.
    assert sim.run_process(run()) == pytest.approx(0.5)


def test_backoff_that_outlives_the_deadline_fails_fast():
    sim, _net, _server, client = setup_pair(loss_probability=1.0)
    policy = RetryPolicy(max_attempts=3, timeout=0.2, base_delay=1.0, deadline=0.5)

    def run():
        try:
            yield from client.call("server", "x", policy=policy)
        except DeadlineExceeded:
            return sim.now

    # No point sleeping 1.0 into a 0.5 budget: give up at the first timeout.
    assert sim.run_process(run()) == pytest.approx(0.2)


def test_deadline_is_stamped_into_the_payload():
    sim, _net, server, client = setup_pair()
    seen = []

    @server.on("work")
    def work(_ep, msg):
        seen.append(msg.payload.get("deadline"))
        return {}

    def run():
        yield from client.call(
            "server", "work", policy=RetryPolicy(deadline=2.0)
        )

    sim.run_process(run())
    assert seen == [2.0]  # absolute sim time: now (0.0) + the 2.0 budget


def test_server_sheds_requests_that_arrive_expired():
    sim, _net, server, client = setup_pair(latency=FixedLatency(1.0))
    server.use_admission(AdmissionConfig(max_inflight=8))
    ran = []

    @server.on("work")
    def work(_ep, _msg):
        ran.append(1)
        return {}

    def run():
        try:
            yield from client.call(
                "server", "work",
                policy=RetryPolicy(max_attempts=1, timeout=0.6, deadline=0.5),
            )
        except TimeoutError_:
            pass
        yield Timeout(3.0)  # let the stale request reach the server

    sim.run_process(run())
    assert ran == []
    assert sim.metrics.counter("resilience.admission.server.shed_expired").value == 1


# ----------------------------------------------------------------------
# Admission control: BUSY rejections and the degraded-mode hook


def _occupied_server(degraded=None):
    sim, net, server, client = setup_pair()
    server.use_admission(AdmissionConfig(max_inflight=1))
    if degraded is not None:
        server.register_degraded("slow", degraded)

    @server.on("slow")
    def slow(_ep, _msg):
        yield Timeout(5.0)
        return {"value": 1}

    occupier = Endpoint(net, "occupier")
    occupier.start()

    def occupy():
        yield from occupier.call("server", "slow", timeout=20.0, retries=0)

    sim.spawn(occupy())
    return sim, server, client


def test_every_attempt_busy_raises_server_busy():
    sim, _server, client = _occupied_server()

    def run():
        yield Timeout(0.1)  # the occupier's request is being served
        try:
            yield from client.call("server", "slow", timeout=1.0, retries=2)
        except ServerBusyError:
            return sim.now

    # Three attempts, three instant BUSY replies: no timer ever expires.
    assert sim.run_process(run()) < 1.0
    assert sim.metrics.counter("rpc.client.busy_rejections").value == 3


def test_degraded_hook_answers_busy_with_a_stale_guess():
    sim, _server, client = _occupied_server(
        degraded=lambda _ep, _msg: {"value": 0, "stale": True}
    )

    def run():
        yield Timeout(0.1)
        return (yield from client.call("server", "slow", timeout=1.0, retries=0))

    reply = sim.run_process(run())
    assert reply == {"value": 0, "stale": True, "degraded": True}
    assert sim.metrics.counter("rpc.server.degraded_replies").value == 1


def test_degraded_hook_returning_none_falls_back_to_busy():
    sim, _server, client = _occupied_server(degraded=lambda _ep, _msg: None)

    def run():
        yield Timeout(0.1)
        try:
            yield from client.call("server", "slow", timeout=1.0, retries=0)
        except ServerBusyError:
            return "busy"

    assert sim.run_process(run()) == "busy"


# ----------------------------------------------------------------------
# Circuit breaker wired into call and cast


def _breaker_setup():
    sim, _net, server, client = setup_pair()
    client.use_breaker(BreakerConfig(failure_threshold=2, recovery_time=1.0))
    mode = ["slow"]

    @server.on("ping")
    def ping(_ep, _msg):
        if mode[0] == "slow":
            yield Timeout(10.0)
        return {"pong": True}

    return sim, client, mode


def test_breaker_opens_then_recloses_after_probe():
    sim, client, mode = _breaker_setup()

    def run():
        out = []
        try:
            yield from client.call("server", "ping", timeout=0.1, retries=3)
        except BreakerOpenError:
            # Two timeouts tripped it; the third attempt never sent.
            out.append(client.breaker_state("server"))
        out.append(client.cast("server", "note"))   # open: dropped locally
        yield Timeout(1.0)                          # cool-off elapses
        mode[0] = "fast"
        reply = yield from client.call("server", "ping", timeout=1.0, retries=0)
        out.append(reply["pong"])
        out.append(client.breaker_state("server"))  # probe success reclosed it
        out.append(client.cast("server", "note"))
        return out

    assert sim.run_process(run()) == ["open", False, True, "closed", True]
    assert sim.metrics.counter("resilience.breaker.client.open").value == 1
    assert sim.metrics.counter("resilience.breaker.client.short_circuits").value >= 1


def test_failed_probe_reopens_the_breaker():
    sim, client, _mode = _breaker_setup()

    def run():
        try:
            yield from client.call("server", "ping", timeout=0.1, retries=3)
        except BreakerOpenError:
            pass
        yield Timeout(1.0)
        try:
            # Still slow: the half-open probe times out.
            yield from client.call("server", "ping", timeout=0.1, retries=0)
        except TimeoutError_:
            pass
        return client.breaker_state("server")

    assert sim.run_process(run()) == "open"


def test_remote_application_errors_do_not_trip_the_breaker():
    sim, _net, server, client = setup_pair()
    client.use_breaker(BreakerConfig(failure_threshold=1))

    @server.on("boom")
    def boom(_ep, _msg):
        raise ValueError("kaput")

    from repro.net.rpc import RpcError

    def run():
        for _ in range(3):
            try:
                yield from client.call("server", "boom", retries=0)
            except RpcError:
                pass
        return client.breaker_state("server")

    # An answering server is a healthy server, whatever it answered.
    assert sim.run_process(run()) == "closed"
