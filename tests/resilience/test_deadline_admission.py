"""Deadline propagation helpers and server-side admission verdicts."""

import pytest

from repro.errors import SimulationError
from repro.resilience import (
    DEADLINE_KEY,
    Admission,
    AdmissionConfig,
    AdmissionControl,
    deadline_of,
    expired,
    remaining,
    stamp,
)


class _Clock:
    def __init__(self, now=0.0):
        self.now = now
        self.counters = {}
        self.metrics = self

    def inc(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value


# ----------------------------------------------------------------------
# Deadline helpers


def test_stamp_and_read_back():
    payload = stamp({"item": 1}, 5.0)
    assert payload[DEADLINE_KEY] == 5.0
    assert deadline_of(payload) == 5.0
    assert deadline_of({}) is None


def test_stamp_keeps_the_tighter_deadline():
    payload = stamp({}, 5.0)
    stamp(payload, 9.0)             # looser: ignored
    assert deadline_of(payload) == 5.0
    stamp(payload, 2.0)             # tighter: wins
    assert deadline_of(payload) == 2.0


def test_expired_is_strictly_after_the_deadline():
    clock = _Clock(now=5.0)
    assert not expired(clock, stamp({}, 5.0))   # exactly on time still counts
    assert expired(clock, stamp({}, 4.9))
    assert not expired(clock, {})               # no deadline, never shed


def test_remaining_clamps_at_zero():
    clock = _Clock(now=3.0)
    assert remaining(clock, stamp({}, 5.0)) == 2.0
    assert remaining(clock, stamp({}, 1.0)) == 0.0
    assert remaining(clock, {}) is None


# ----------------------------------------------------------------------
# Admission control


def test_admission_config_validation():
    with pytest.raises(SimulationError):
        AdmissionConfig(max_inflight=0)


def test_admits_under_the_watermark_busy_at_it():
    clock = _Clock()
    control = AdmissionControl(clock, "server", AdmissionConfig(max_inflight=2))
    assert control.decide(0, {}) is Admission.ADMIT
    assert control.decide(1, {}) is Admission.ADMIT
    assert control.decide(2, {}) is Admission.BUSY
    assert clock.counters["resilience.admission.server.shed_busy"] == 1


def test_expired_is_shed_even_with_capacity():
    clock = _Clock(now=10.0)
    control = AdmissionControl(clock, "server", AdmissionConfig(max_inflight=8))
    assert control.decide(0, stamp({}, 9.0)) is Admission.EXPIRED
    assert clock.counters["resilience.admission.server.shed_expired"] == 1


def test_shed_expired_can_be_disabled():
    clock = _Clock(now=10.0)
    control = AdmissionControl(
        clock, "server", AdmissionConfig(max_inflight=8, shed_expired=False)
    )
    assert control.decide(0, stamp({}, 9.0)) is Admission.ADMIT
