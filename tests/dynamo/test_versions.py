"""Vector clocks and sibling pruning."""

from repro.dynamo import VectorClock, VersionedValue
from repro.dynamo.versions import prune_dominated


def test_increment_creates_new_clock():
    a = VectorClock()
    b = a.increment("n1")
    assert a.counters == {}
    assert b.counters == {"n1": 1}


def test_descends_reflexive_and_ordered():
    a = VectorClock({"n1": 2})
    b = VectorClock({"n1": 1})
    assert a.descends(a)
    assert a.descends(b)
    assert not b.descends(a)


def test_empty_clock_descended_by_all():
    assert VectorClock({"n1": 1}).descends(VectorClock())
    assert VectorClock().descends(VectorClock())


def test_concurrent_detection():
    a = VectorClock({"n1": 1})
    b = VectorClock({"n2": 1})
    assert a.concurrent_with(b)
    assert not a.concurrent_with(a)


def test_merge_is_pointwise_max():
    a = VectorClock({"n1": 3, "n2": 1})
    b = VectorClock({"n2": 5, "n3": 2})
    merged = a.merge(b)
    assert merged.counters == {"n1": 3, "n2": 5, "n3": 2}
    assert merged.descends(a) and merged.descends(b)


def test_merge_commutative():
    a = VectorClock({"n1": 1})
    b = VectorClock({"n2": 2})
    assert a.merge(b) == b.merge(a)


def test_zero_counters_dropped():
    assert VectorClock({"n1": 0}).counters == {}


def test_hashable_and_eq():
    a = VectorClock({"n1": 1})
    b = VectorClock({"n1": 1})
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1


def test_prune_keeps_concurrent_siblings():
    va = VersionedValue("a", VectorClock({"n1": 1}))
    vb = VersionedValue("b", VectorClock({"n2": 1}))
    frontier = prune_dominated([va, vb])
    assert {v.value for v in frontier} == {"a", "b"}


def test_prune_drops_dominated():
    old = VersionedValue("old", VectorClock({"n1": 1}))
    new = VersionedValue("new", VectorClock({"n1": 2}))
    assert prune_dominated([old, new]) == [new]
    assert prune_dominated([new, old]) == [new]


def test_prune_collapses_duplicates():
    a = VersionedValue("x", VectorClock({"n1": 1}))
    b = VersionedValue("x", VectorClock({"n1": 1}))
    assert len(prune_dominated([a, b])) == 1


def test_prune_mixed():
    base = VersionedValue("base", VectorClock({"n1": 1}))
    left = VersionedValue("left", VectorClock({"n1": 2}))
    right = VersionedValue("right", VectorClock({"n1": 1, "n2": 1}))
    frontier = prune_dominated([base, left, right])
    assert {v.value for v in frontier} == {"left", "right"}
