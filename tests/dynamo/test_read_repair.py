"""Read repair: a GET heals stale replicas in the background."""

from repro.dynamo import DynamoCluster
from repro.sim import Timeout


def test_stale_replica_repaired_by_get():
    cluster = DynamoCluster(num_nodes=5, n=3, r=2, w=2, seed=13)
    client = cluster.client()
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        # First write reaches everyone.
        yield from client.put("k", "v1")
        first = yield from client.get("k")
        # One owner misses the second write (it is down for a moment).
        cluster.crash(owners[2])
        yield from client.put("k", "v2", context=first.context)
        cluster.restart(owners[2])
        yield Timeout(0.05)
        # A read touches the stale node (R spans it eventually); repair
        # fires as a side effect.
        yield from client.get("k")
        yield Timeout(0.05)
        return [v.value for v in cluster.nodes[owners[2]].versions_of("k")]

    values = cluster.sim.run_process(scenario())
    repaired = cluster.sim.metrics.counter("dynamo.read_repairs").value
    # The stale node either already had v2 (hint path) or read repair
    # delivered it; either way it now serves the latest version.
    assert "v2" in values
    assert repaired >= 0  # metric exists; >0 when the stale path was hit


def test_read_repair_can_be_disabled():
    cluster = DynamoCluster(num_nodes=5, n=3, r=3, w=1, seed=13,
                            read_repair=False, hinted_handoff=False)
    client = cluster.client()
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        cluster.crash(owners[2])
        yield from client.put("k", "v1")
        cluster.restart(owners[2])
        yield Timeout(0.05)
        try:
            yield from client.get("k")
        except Exception:
            pass
        yield Timeout(0.05)
        return [v.value for v in cluster.nodes[owners[2]].versions_of("k")]

    values = cluster.sim.run_process(scenario())
    assert cluster.sim.metrics.counter("dynamo.read_repairs").value == 0
    assert values == []  # nobody healed it


def test_read_repair_converges_siblings_to_all_replicas():
    cluster = DynamoCluster(num_nodes=5, n=3, r=3, w=3, seed=29)
    alice = cluster.client("alice")
    bob = cluster.client("bob")
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        yield from alice.put("k", "a")
        yield from bob.put("k", "b")  # concurrent sibling
        yield from alice.get("k")     # sees both; repairs anyone missing one
        yield Timeout(0.05)
        coverage = []
        for owner in owners:
            values = {v.value for v in cluster.nodes[owner].versions_of("k")}
            coverage.append(values)
        return coverage

    coverage = cluster.sim.run_process(scenario())
    for values in coverage:
        assert values == {"a", "b"}
