"""Dynamo end-to-end: quorums, siblings, partitions, hinted handoff."""

import pytest

from repro.dynamo import DynamoCluster, VectorClock
from repro.dynamo.cluster import QuorumUnavailable
from repro.errors import SimulationError
from repro.sim import Timeout


def test_bad_quorum_config_rejected():
    with pytest.raises(SimulationError):
        DynamoCluster(num_nodes=3, n=4, r=2, w=2)
    with pytest.raises(SimulationError):
        DynamoCluster(num_nodes=3, n=3, r=0, w=2)


def test_put_get_roundtrip():
    cluster = DynamoCluster(seed=1)
    client = cluster.client()

    def job():
        yield from client.put("cart:1", {"items": ["book"]})
        result = yield from client.get("cart:1")
        return result

    result = cluster.sim.run_process(job())
    assert result.values == [{"items": ["book"]}]
    assert not result.conflicted


def test_get_missing_key_empty():
    cluster = DynamoCluster(seed=1)
    client = cluster.client()

    def job():
        result = yield from client.get("nothing")
        return result

    result = cluster.sim.run_process(job())
    assert result.values == []
    assert result.context == VectorClock()


def test_sequential_puts_with_context_supersede():
    cluster = DynamoCluster(seed=1)
    client = cluster.client()

    def job():
        yield from client.put("k", "v1")
        first = yield from client.get("k")
        yield from client.put("k", "v2", context=first.context)
        second = yield from client.get("k")
        return second

    result = cluster.sim.run_process(job())
    assert result.values == ["v2"]


def test_blind_puts_from_two_clients_make_siblings():
    """PUTs without covering contexts are concurrent: a later GET returns
    both siblings for the application to reconcile (§6.1)."""
    cluster = DynamoCluster(seed=1)
    alice = cluster.client("alice")
    bob = cluster.client("bob")

    def job():
        yield from alice.put("k", "from-alice")
        yield from bob.put("k", "from-bob")
        result = yield from alice.get("k")
        return result

    result = cluster.sim.run_process(job())
    assert result.conflicted
    assert set(result.values) == {"from-alice", "from-bob"}


def test_reconciling_put_collapses_siblings():
    cluster = DynamoCluster(seed=1)
    alice = cluster.client("alice")
    bob = cluster.client("bob")

    def job():
        yield from alice.put("k", "a")
        yield from bob.put("k", "b")
        conflicted = yield from alice.get("k")
        assert conflicted.conflicted
        yield from alice.put("k", "merged", context=conflicted.context)
        final = yield from alice.get("k")
        return final

    result = cluster.sim.run_process(job())
    assert result.values == ["merged"]


def test_put_always_accepted_with_nodes_down():
    """Availability over consistency: N-1 intended owners dead, the PUT
    still lands (hinted to fallbacks) and the data is GETtable."""
    cluster = DynamoCluster(num_nodes=6, n=3, r=1, w=2, seed=2)
    client = cluster.client()
    intended = cluster.ring.intended_owners("k", 3)
    for node in intended[:2]:
        cluster.crash(node)

    def job():
        yield from client.put("k", "survives")
        result = yield from client.get("k")
        return result

    result = cluster.sim.run_process(job())
    assert "survives" in result.values


def test_put_fails_without_hinted_handoff_when_owners_down():
    cluster = DynamoCluster(num_nodes=6, n=3, r=2, w=3, seed=2, hinted_handoff=False)
    client = cluster.client()
    intended = cluster.ring.intended_owners("k", 3)
    for node in intended[:2]:
        cluster.crash(node)

    def job():
        try:
            yield from client.put("k", "v")
        except QuorumUnavailable:
            return "unavailable"
        return "stored"

    assert cluster.sim.run_process(job()) == "unavailable"


def test_hinted_handoff_delivers_home():
    cluster = DynamoCluster(num_nodes=6, n=3, r=2, w=2, seed=2)
    client = cluster.client()
    intended = cluster.ring.intended_owners("k", 3)
    cluster.crash(intended[0])

    def job():
        yield from client.put("k", "v")
        cluster.restart(intended[0])
        yield Timeout(0.1)
        delivered = yield from cluster.run_handoff_round()
        return delivered

    delivered = cluster.sim.run_process(job())
    assert delivered >= 1
    home = cluster.nodes[intended[0]]
    assert any(v.value == "v" for v in home.versions_of("k"))


def test_get_unavailable_when_r_unreachable():
    cluster = DynamoCluster(num_nodes=3, n=3, r=3, w=1, seed=2)
    client = cluster.client()
    cluster.crash("node0")

    def job():
        try:
            yield from client.get("k")
        except QuorumUnavailable:
            return "unavailable"
        return "ok"

    assert cluster.sim.run_process(job()) == "unavailable"
