"""Elastic membership: join bootstraps, decommission drains, no data lost."""

import pytest

from repro.dynamo import DynamoCluster
from repro.errors import SimulationError
from repro.sim import Timeout


def _preload(cluster, count, client):
    def job():
        for i in range(count):
            yield from client.put(f"k{i}", i)
            yield Timeout(0.01)

    cluster.sim.run_process(job())


def test_join_bootstraps_gained_ranges():
    cluster = DynamoCluster(num_nodes=5, seed=31)
    client = cluster.client()
    _preload(cluster, 60, client)

    stats = cluster.sim.run_process(cluster.join("node5"))
    assert stats["moved_ranges"] > 0
    assert stats["versions_moved"] > 0
    assert "node5" in cluster.nodes
    assert cluster.membership.is_alive("node5")

    joiner = cluster.nodes["node5"]
    for i in range(60):
        key = f"k{i}"
        if "node5" in cluster.ring.intended_owners(key, cluster.n):
            assert any(v.value == i for v in joiner.versions_of(key)), key


def test_join_duplicate_name_rejected():
    cluster = DynamoCluster(num_nodes=3, seed=31)
    with pytest.raises(SimulationError):
        cluster.sim.run_process(cluster.join("node0"))


def test_joined_node_serves_reads_and_writes():
    cluster = DynamoCluster(num_nodes=5, seed=32)
    client = cluster.client()
    _preload(cluster, 20, client)
    cluster.sim.run_process(cluster.join("node5"))

    def job():
        yield from client.put("fresh", "after-join")
        result = yield from client.get("fresh")
        return result

    result = cluster.sim.run_process(job())
    assert result.values == ["after-join"]


def test_decommission_drains_before_departing():
    cluster = DynamoCluster(num_nodes=6, seed=33)
    client = cluster.client()
    _preload(cluster, 60, client)

    stats = cluster.sim.run_process(cluster.decommission("node0"))
    assert "node0" not in cluster.nodes
    assert "node0" not in cluster.ring.nodes
    assert stats["moved_ranges"] > 0

    # Every acked write is still readable from the reshaped ring.
    def verify():
        values = []
        for i in range(60):
            result = yield from client.get(f"k{i}")
            values.append(result.values)
        return values

    values = cluster.sim.run_process(verify())
    for i, got in enumerate(values):
        assert i in got, f"k{i} lost in decommission"


def test_decommission_below_n_rejected():
    cluster = DynamoCluster(num_nodes=3, n=3, seed=31)
    with pytest.raises(SimulationError, match="below N"):
        cluster.sim.run_process(cluster.decommission("node0"))


def test_dead_node_can_be_decommissioned():
    """The leaver's replicas survive on the other owners; anti-entropy
    heals the copy count after the ring drops the corpse."""
    cluster = DynamoCluster(num_nodes=6, seed=34)
    client = cluster.client()
    _preload(cluster, 40, client)
    cluster.crash("node2")

    stats = cluster.sim.run_process(cluster.decommission("node2"))
    assert stats["versions_moved"] == 0  # nothing streamed from a corpse
    assert "node2" not in cluster.nodes

    def heal_and_verify():
        for _ in range(3):
            yield from cluster.run_merkle_round()
            yield Timeout(0.05)
        missing = []
        for i in range(40):
            result = yield from client.get(f"k{i}")
            if i not in result.values:
                missing.append(i)
        return missing

    missing = cluster.sim.run_process(heal_and_verify())
    assert missing == []
    for i in range(40):
        assert cluster.converged_on(f"k{i}")


def test_writes_mid_reshape_route_to_current_ring():
    """A put racing the join lands on owners of the *new* topology —
    hinted handoff and ownership checks consult the live ring."""
    cluster = DynamoCluster(num_nodes=5, seed=35)
    client = cluster.client()

    def scenario():
        cluster.sim.spawn(cluster.join("node5"), name="join")
        yield Timeout(0.001)  # join installs the ring first, then pulls
        yield from client.put("race", "mid-reshape")
        yield Timeout(2.0)  # let the bootstrap finish
        result = yield from client.get("race")
        return result

    result = cluster.sim.run_process(scenario())
    assert "mid-reshape" in result.values
    owners = cluster.ring.intended_owners("race", cluster.n)
    held = [
        o for o in owners
        if any(v.value == "mid-reshape" for v in cluster.nodes[o].versions_of("race"))
    ]
    assert held, owners


# ----------------------------------------------------------------------
# Anti-entropy round hardening (regression: one dead peer used to abort
# the whole round)


def _blackhole(cluster, victim):
    """Make ``victim`` unreachable on the wire while membership and the
    network registry still call it alive — the undetected-failure window
    the round-hardening bugfix is about."""
    from repro.net.network import LinkConfig

    for other in cluster.nodes:
        if other != victim:
            cluster.network.set_link(other, victim, LinkConfig(loss_probability=1.0))


def test_anti_entropy_round_survives_dead_peer():
    """A peer timing out mid-round used to abort the whole round with
    the first TimeoutError_; now the peer is skipped, the error counted,
    and every other pair still syncs."""
    cluster = DynamoCluster(num_nodes=5, n=3, r=1, w=1, seed=36, read_repair=False)
    client = cluster.client()
    victim = cluster.ring.intended_owners("k0", cluster.n)[0]

    def scenario():
        cluster.crash(victim)  # misses the writes...
        for i in range(10):
            yield from client.put(f"k{i}", i)
            yield Timeout(0.01)
        cluster.restart(victim)
        # ...then goes dark *undetected*: membership still says alive,
        # so the round pushes to it and fails partway through.
        _blackhole(cluster, victim)
        pushed = yield from cluster.run_anti_entropy_round()
        return pushed

    cluster.sim.run_process(scenario())  # completing at all is the fix
    assert cluster.sim.metrics.counters().get("dynamo.anti_entropy_errors", 0) > 0


def test_merkle_round_survives_dead_peer():
    cluster = DynamoCluster(num_nodes=5, n=3, r=1, w=1, seed=37, read_repair=False)
    client = cluster.client()
    _preload(cluster, 20, client)
    _blackhole(cluster, "node1")  # undetected: membership says alive

    stats = cluster.sim.run_process(cluster.run_merkle_round())
    assert cluster.sim.metrics.counters().get("dynamo.anti_entropy_errors", 0) > 0
    # The other pairs still exchanged digests.
    assert stats["digest_msgs"] > 0


def test_converged_on_false_with_no_live_owners():
    """Zero live intended owners must read as *not* converged — the
    vacuous True let reconvergence invariants pass during blackouts."""
    cluster = DynamoCluster(num_nodes=5, seed=38)
    client = cluster.client()

    def job():
        yield from client.put("k", "v")

    cluster.sim.run_process(job())
    assert cluster.converged_on("k")
    for owner in cluster.ring.intended_owners("k", cluster.n):
        cluster.crash(owner)
    assert not cluster.converged_on("k")
