"""Node-to-node anti-entropy: replicas converge without client reads."""

from repro.dynamo import DynamoCluster
from repro.sim import Timeout


def test_anti_entropy_heals_a_missed_write():
    cluster = DynamoCluster(num_nodes=5, n=3, r=1, w=1, seed=19, read_repair=False)
    client = cluster.client()
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        cluster.crash(owners[1])
        yield from client.put("k", "v1")
        cluster.restart(owners[1])
        yield Timeout(0.05)
        pushed = yield from cluster.run_anti_entropy_round()
        yield Timeout(0.05)
        return pushed

    pushed = cluster.sim.run_process(scenario())
    assert pushed >= 1
    assert any(v.value == "v1" for v in cluster.nodes[owners[1]].versions_of("k"))
    assert cluster.converged_on("k")


def test_anti_entropy_idempotent_once_converged():
    cluster = DynamoCluster(num_nodes=5, n=3, r=2, w=3, seed=19)
    client = cluster.client()

    def scenario():
        yield from client.put("k", "v1")
        first = yield from cluster.run_anti_entropy_round()
        second = yield from cluster.run_anti_entropy_round()
        return first, second

    _first, second = cluster.sim.run_process(scenario())
    assert second == 0
    assert cluster.converged_on("k")


def test_anti_entropy_spreads_siblings_everywhere():
    cluster = DynamoCluster(num_nodes=5, n=3, r=2, w=2, seed=23, read_repair=False)
    alice = cluster.client("alice")
    bob = cluster.client("bob")
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        yield from alice.put("k", "a")
        yield from bob.put("k", "b")
        for _ in range(2):
            yield from cluster.run_anti_entropy_round()
            yield Timeout(0.05)
        return [
            {v.value for v in cluster.nodes[o].versions_of("k")} for o in owners
        ]

    frontiers = cluster.sim.run_process(scenario())
    for values in frontiers:
        assert values == {"a", "b"}
    assert cluster.converged_on("k")
