"""Node-to-node anti-entropy: replicas converge without client reads."""

from repro.dynamo import DynamoCluster
from repro.net import (
    FixedLatency,
    LinkConfig,
    Site,
    Topology,
    TopologyNetwork,
    WanLink,
)
from repro.sim import Simulator, Timeout


def test_anti_entropy_heals_a_missed_write():
    cluster = DynamoCluster(num_nodes=5, n=3, r=1, w=1, seed=19, read_repair=False)
    client = cluster.client()
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        cluster.crash(owners[1])
        yield from client.put("k", "v1")
        cluster.restart(owners[1])
        yield Timeout(0.05)
        pushed = yield from cluster.run_anti_entropy_round()
        yield Timeout(0.05)
        return pushed

    pushed = cluster.sim.run_process(scenario())
    assert pushed >= 1
    assert any(v.value == "v1" for v in cluster.nodes[owners[1]].versions_of("k"))
    assert cluster.converged_on("k")


def test_anti_entropy_idempotent_once_converged():
    cluster = DynamoCluster(num_nodes=5, n=3, r=2, w=3, seed=19)
    client = cluster.client()

    def scenario():
        yield from client.put("k", "v1")
        first = yield from cluster.run_anti_entropy_round()
        second = yield from cluster.run_anti_entropy_round()
        return first, second

    _first, second = cluster.sim.run_process(scenario())
    assert second == 0
    assert cluster.converged_on("k")


def test_anti_entropy_spreads_siblings_everywhere():
    cluster = DynamoCluster(num_nodes=5, n=3, r=2, w=2, seed=23, read_repair=False)
    alice = cluster.client("alice")
    bob = cluster.client("bob")
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        yield from alice.put("k", "a")
        yield from bob.put("k", "b")
        for _ in range(2):
            yield from cluster.run_anti_entropy_round()
            yield Timeout(0.05)
        return [
            {v.value for v in cluster.nodes[o].versions_of("k")} for o in owners
        ]

    frontiers = cluster.sim.run_process(scenario())
    for values in frontiers:
        assert values == {"a", "b"}
    assert cluster.converged_on("k")


def test_anti_entropy_survives_wan_cut_without_starving_intra_site_peers():
    """A WAN cut is a fault overlay, not a partition: cut-off peers still
    look reachable, so every push to them times out. The round must mark
    them unresponsive after the first timeout (counting
    ``dynamo.anti_entropy_errors``) and keep syncing intra-site peers
    instead of burning the retry budget per key."""
    sim = Simulator(seed=31)
    lan = FixedLatency(0.001)
    topology = Topology(
        [Site("a", lan=lan), Site("b", lan=lan)],
        default_wan=WanLink(FixedLatency(0.02)),
    )
    network = TopologyNetwork(
        sim, topology, default_link=LinkConfig(latency=lan)
    )
    cluster = DynamoCluster(
        num_nodes=6, n=3, r=1, w=1, sim=sim, network=network,
        read_repair=False,
    )
    remote = "node5"
    topology.place(remote, "b")
    topology.place_all((n for n in cluster.nodes if n != remote), "a")
    client = cluster.client("writer")
    topology.place("writer", "a")

    # One key whose owners are all intra-site (victim misses the write),
    # one key owned by the cut-off remote node (remote misses it).
    local_key = next(
        k for k in (f"lk{i}" for i in range(100))
        if remote not in cluster.ring.intended_owners(k, 3)
    )
    remote_key = next(
        k for k in (f"rk{i}" for i in range(100))
        if remote in cluster.ring.intended_owners(k, 3)
        and cluster.ring.intended_owners(k, 3)[0] != remote
    )
    victim = cluster.ring.intended_owners(local_key, 3)[1]

    def scenario():
        cluster.crash(victim)
        cluster.crash(remote)
        yield from client.put(local_key, "lv")
        yield from client.put(remote_key, "rv")
        cluster.restart(victim)
        cluster.restart(remote)
        yield Timeout(0.05)
        faults = network.cut_sites("a", "b")
        start = sim.now
        yield from cluster.run_anti_entropy_round()
        cut_round_cost = sim.now - start
        network.heal_sites(faults)
        yield from cluster.run_anti_entropy_round()
        yield Timeout(0.05)
        return cut_round_cost

    cut_round_cost = sim.run_process(scenario())
    # Intra-site repair proceeded under the cut, cross-site pushes were
    # counted as errors, and the round's timeout burn stayed bounded by
    # the per-source skip set (one failed push per source, not per key).
    assert any(
        v.value == "lv" for v in cluster.nodes[victim].versions_of(local_key)
    )
    assert sim.metrics.counter("dynamo.anti_entropy_errors").value >= 1
    assert cut_round_cost < 5.0
    # After the heal the next round converges the cut-off site too.
    assert cluster.converged_on(remote_key)
    assert cluster.converged_on(local_key)
