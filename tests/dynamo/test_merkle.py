"""Merkle-digest anti-entropy: convergence at digest-message cost."""

from repro.dynamo import DynamoCluster, VectorClock, VersionedValue
from repro.dynamo.merkle import all_digests, bucket_of, frontier_digest
from repro.sim import Timeout


def test_bucket_of_stable():
    assert bucket_of("k", 16) == bucket_of("k", 16)
    assert 0 <= bucket_of("anything", 8) < 8


def test_digest_reflects_content():
    v1 = VersionedValue("a", VectorClock({"n1": 1}))
    v2 = VersionedValue("b", VectorClock({"n1": 2}))
    key = "some-key"
    bucket = bucket_of(key, 4)
    empty = frontier_digest({}, bucket, 4)
    with_v1 = frontier_digest({key: [v1]}, bucket, 4)
    with_v2 = frontier_digest({key: [v2]}, bucket, 4)
    assert empty != with_v1
    assert with_v1 != with_v2
    assert with_v1 == frontier_digest({key: [v1]}, bucket, 4)


def test_digest_ignores_other_buckets():
    v = VersionedValue("a", VectorClock({"n1": 1}))
    key = "some-key"
    other_bucket = (bucket_of(key, 4) + 1) % 4
    assert frontier_digest({key: [v]}, other_bucket, 4) == frontier_digest({}, other_bucket, 4)


def test_all_digests_length():
    assert len(all_digests({}, 8)) == 8


def test_merkle_round_heals_a_missed_write():
    cluster = DynamoCluster(num_nodes=5, n=3, r=1, w=1, seed=19, read_repair=False)
    client = cluster.client()
    owners = cluster.ring.intended_owners("k", 3)

    def scenario():
        cluster.crash(owners[1])
        yield from client.put("k", "v1")
        cluster.restart(owners[1])
        yield Timeout(0.05)
        stats = yield from cluster.run_merkle_round(buckets=8)
        return stats

    stats = cluster.sim.run_process(scenario())
    assert stats["versions_moved"] >= 1
    assert any(v.value == "v1" for v in cluster.nodes[owners[1]].versions_of("k"))
    assert cluster.converged_on("k")


def test_converged_round_costs_only_digests():
    cluster = DynamoCluster(num_nodes=4, n=3, r=2, w=3, seed=21)
    client = cluster.client()

    def scenario():
        yield from client.put("k1", "a")
        yield from client.put("k2", "b")
        first = yield from cluster.run_merkle_round(buckets=8)
        second = yield from cluster.run_merkle_round(buckets=8)
        return first, second

    first, second = cluster.sim.run_process(scenario())
    assert second["bucket_msgs"] == 0
    assert second["versions_moved"] == 0
    assert second["digest_msgs"] > 0  # the cheap heartbeat of agreement


def test_merkle_respects_ownership():
    """Non-owners never accumulate keys through merkle sync."""
    cluster = DynamoCluster(num_nodes=6, n=2, r=1, w=2, seed=23)
    client = cluster.client()

    def scenario():
        yield from client.put("the-key", "v")
        for _ in range(2):
            yield from cluster.run_merkle_round(buckets=8)
        owners = set(cluster.ring.intended_owners("the-key", 2))
        holders = {
            name for name, node in cluster.nodes.items()
            if node.versions_of("the-key")
        }
        return owners, holders

    owners, holders = cluster.sim.run_process(scenario())
    assert holders <= owners | holders  # trivially true; real check below
    # Every non-owner holding the key could only be a hinted fallback from
    # the original PUT, never a merkle recipient: with all nodes up at PUT
    # time there were no hints, so holders ⊆ owners.
    assert holders <= owners


# ----------------------------------------------------------------------
# Edge cases: degenerate stores and representation independence


def test_empty_vs_empty_all_buckets_agree():
    """Two empty stores digest identically in every bucket — an
    anti-entropy pass between fresh nodes moves nothing."""
    assert all_digests({}, 16) == all_digests({}, 16)
    for bucket in range(8):
        assert frontier_digest({}, bucket, 8) == frontier_digest({}, bucket, 8)


def test_single_bucket_total_divergence():
    """With one bucket the whole keyspace is one digest: completely
    disjoint stores disagree on it, and syncing that one bucket is a
    whole-store transfer — the degenerate tree gives no locality."""
    mine = {
        f"k{i}": [VersionedValue(i, VectorClock({"n1": i + 1}))]
        for i in range(10)
    }
    theirs = {
        f"j{i}": [VersionedValue(i, VectorClock({"n2": i + 1}))]
        for i in range(10)
    }
    assert all(bucket_of(key, 1) == 0 for key in list(mine) + list(theirs))
    assert all_digests(mine, 1) != all_digests(theirs, 1)
    # Same content, one bucket: still equal — divergence, not bucketing.
    assert all_digests(mine, 1) == all_digests(dict(mine), 1)


def test_digest_stable_across_insertion_order():
    """The digest is a function of the *set* of (key, clock, value)
    triples, not of dict insertion order — neither store-key order nor
    clock-counter order may leak into the hash."""
    forward = VersionedValue("v", VectorClock({"n1": 1, "n2": 2}))
    backward = VersionedValue("v", VectorClock({"n2": 2, "n1": 1}))
    store_ab = {"a": [forward], "b": [forward]}
    store_ba = {"b": [forward], "a": [forward]}
    assert list(store_ab) != list(store_ba)  # insertion order does differ
    for bucket in range(4):
        assert (frontier_digest(store_ab, bucket, 4)
                == frontier_digest(store_ba, bucket, 4))
        assert (frontier_digest({"k": [forward]}, bucket, 4)
                == frontier_digest({"k": [backward]}, bucket, 4))
