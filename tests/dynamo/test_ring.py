"""Consistent hashing ring."""

import pytest

from repro.errors import SimulationError
from repro.dynamo import HashRing, moved_ranges


def test_empty_ring_rejected():
    with pytest.raises(SimulationError):
        HashRing([])


def test_owner_is_deterministic():
    ring = HashRing(["a", "b", "c"])
    assert ring.owner("key1") == ring.owner("key1")


def test_preference_list_distinct_nodes():
    ring = HashRing(["a", "b", "c", "d"], vnodes=8)
    prefs = ring.preference_list("some-key", 3)
    assert len(prefs) == 3
    assert len(set(prefs)) == 3


def test_preference_list_skips_dead_nodes():
    ring = HashRing(["a", "b", "c", "d"], vnodes=8)
    strict = ring.preference_list("k", 3)
    dead = strict[0]
    sloppy = ring.preference_list("k", 3, alive=lambda n: n != dead)
    assert dead not in sloppy
    assert len(sloppy) == 3


def test_preference_list_shorter_when_ring_exhausted():
    ring = HashRing(["a", "b"], vnodes=4)
    assert len(ring.preference_list("k", 5)) == 2


def test_bad_n_rejected():
    ring = HashRing(["a"])
    with pytest.raises(SimulationError):
        ring.preference_list("k", 0)


def test_keys_spread_across_nodes():
    ring = HashRing([f"n{i}" for i in range(5)], vnodes=32)
    owners = {ring.owner(f"key-{i}") for i in range(200)}
    assert len(owners) == 5  # every node owns something


def test_intended_owners_ignore_liveness():
    ring = HashRing(["a", "b", "c"], vnodes=8)
    assert ring.intended_owners("k", 2) == ring.preference_list("k", 2)


# ----------------------------------------------------------------------
# Elastic membership


def test_duplicate_nodes_rejected_at_init():
    with pytest.raises(SimulationError, match="duplicate"):
        HashRing(["a", "b", "a"])


def test_add_node_duplicate_rejected():
    ring = HashRing(["a", "b"])
    with pytest.raises(SimulationError, match="duplicate"):
        ring.add_node("a")


def test_remove_node_unknown_rejected():
    ring = HashRing(["a", "b"])
    with pytest.raises(SimulationError, match="unknown"):
        ring.remove_node("zebra")


def test_remove_last_node_rejected():
    ring = HashRing(["a"])
    with pytest.raises(SimulationError, match="at least one"):
        ring.remove_node("a")


def test_add_node_matches_from_scratch_ring():
    ring = HashRing(["a", "b", "c"], vnodes=8)
    ring.add_node("d")
    fresh = HashRing(["a", "b", "c", "d"], vnodes=8)
    assert ring._positions == fresh._positions
    for i in range(50):
        key = f"key-{i}"
        assert ring.preference_list(key, 3) == fresh.preference_list(key, 3)


def test_remove_node_matches_from_scratch_ring():
    ring = HashRing(["a", "b", "c", "d"], vnodes=8)
    ring.remove_node("b")
    fresh = HashRing(["a", "c", "d"], vnodes=8)
    assert ring._positions == fresh._positions
    for i in range(50):
        key = f"key-{i}"
        assert ring.preference_list(key, 3) == fresh.preference_list(key, 3)


def test_clone_is_independent():
    ring = HashRing(["a", "b", "c"], vnodes=8)
    snapshot = ring.clone()
    ring.add_node("d")
    assert "d" in ring.nodes
    assert "d" not in snapshot.nodes
    assert len(snapshot._positions) == 3 * 8


def test_moved_ranges_exact_over_keys():
    """A key's owner list changed iff the key hashes into a moved arc."""
    before = HashRing(["a", "b", "c", "d"], vnodes=8)
    after = before.clone()
    after.add_node("e")
    moved = moved_ranges(before, after, n=3)
    assert moved  # a join always moves something
    changed = 0
    for i in range(500):
        key = f"key-{i}"
        owners_changed = (
            before.preference_list(key, 3) != after.preference_list(key, 3)
        )
        in_arc = any(arc.contains_key(key) for arc in moved)
        assert owners_changed == in_arc, key
        changed += owners_changed
    assert 0 < changed < 500


def test_moved_ranges_identical_rings_move_nothing():
    ring = HashRing(["a", "b", "c"], vnodes=8)
    assert moved_ranges(ring, ring.clone(), n=3) == []


def test_moved_range_gained_and_lost():
    before = HashRing(["a", "b", "c", "d"], vnodes=8)
    after = before.clone()
    after.remove_node("c")
    for arc in moved_ranges(before, after, n=3):
        assert "c" not in arc.new_owners
        for node in arc.gained:
            assert node in arc.new_owners and node not in arc.old_owners
        for node in arc.lost:
            assert node in arc.old_owners and node not in arc.new_owners


def test_moved_range_contains_hash_wraps():
    from repro.dynamo.ring import MovedRange, RING_SIZE

    arc = MovedRange(RING_SIZE - 10, 5, ("a",), ("b",))
    assert arc.contains_hash(RING_SIZE - 1)
    assert arc.contains_hash(0)
    assert arc.contains_hash(4)
    assert not arc.contains_hash(5)
    assert not arc.contains_hash(RING_SIZE - 11)
