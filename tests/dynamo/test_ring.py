"""Consistent hashing ring."""

import pytest

from repro.errors import SimulationError
from repro.dynamo import HashRing


def test_empty_ring_rejected():
    with pytest.raises(SimulationError):
        HashRing([])


def test_owner_is_deterministic():
    ring = HashRing(["a", "b", "c"])
    assert ring.owner("key1") == ring.owner("key1")


def test_preference_list_distinct_nodes():
    ring = HashRing(["a", "b", "c", "d"], vnodes=8)
    prefs = ring.preference_list("some-key", 3)
    assert len(prefs) == 3
    assert len(set(prefs)) == 3


def test_preference_list_skips_dead_nodes():
    ring = HashRing(["a", "b", "c", "d"], vnodes=8)
    strict = ring.preference_list("k", 3)
    dead = strict[0]
    sloppy = ring.preference_list("k", 3, alive=lambda n: n != dead)
    assert dead not in sloppy
    assert len(sloppy) == 3


def test_preference_list_shorter_when_ring_exhausted():
    ring = HashRing(["a", "b"], vnodes=4)
    assert len(ring.preference_list("k", 5)) == 2


def test_bad_n_rejected():
    ring = HashRing(["a"])
    with pytest.raises(SimulationError):
        ring.preference_list("k", 0)


def test_keys_spread_across_nodes():
    ring = HashRing([f"n{i}" for i in range(5)], vnodes=32)
    owners = {ring.owner(f"key-{i}") for i in range(200)}
    assert len(owners) == 5  # every node owns something


def test_intended_owners_ignore_liveness():
    ring = HashRing(["a", "b", "c"], vnodes=8)
    assert ring.intended_owners("k", 2) == ring.preference_list("k", 2)
