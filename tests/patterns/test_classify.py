"""Classifier: measures ACID 2.0 per type and recommends the right
patterns for bank-like and register-like op spaces."""

from repro.bank import build_account_registry
from repro.core import Operation, TypeRegistry
from repro.patterns import classify_operation_space
from repro.patterns.classify import explain


def bank_sample():
    return [
        Operation("DEPOSIT", {"amount": 100.0}, uniquifier="d1", ingress_time=1.0),
        Operation("DEPOSIT", {"amount": 50.0}, uniquifier="d2", ingress_time=2.0),
        Operation("CLEAR_CHECK", {"amount": 30.0}, uniquifier="c1", ingress_time=3.0),
        Operation("FEE", {"amount": 5.0}, uniquifier="f1", ingress_time=4.0),
    ]


def register_registry():
    registry = TypeRegistry(initial_state=dict)
    registry.register(
        "SET", lambda s, op: {**s, "value": op.args["value"]},
        declared_commutative=False,
    )
    return registry


def test_bank_space_is_fully_commutative_and_escrowable():
    profile = classify_operation_space(build_account_registry(), bank_sample())
    assert profile.fully_commutative
    assert profile.idempotent_via_uniquifier
    assert "DEPOSIT" in profile.numeric_types
    names = [pattern.name for pattern in profile.recommendations]
    assert "uniquifier" in names
    assert "operation-centric-capture" in names
    assert "escrow-locking" in names
    assert "memories-guesses-apologies" in names


def test_register_space_flags_noncommutativity():
    registry = register_registry()
    ops = [
        Operation("SET", {"value": "a"}, uniquifier="s1", ingress_time=1.0),
        Operation("SET", {"value": "b"}, uniquifier="s2", ingress_time=2.0),
    ]
    profile = classify_operation_space(registry, ops)
    assert not profile.per_type_commutative["SET"]
    assert not profile.fully_commutative
    names = [pattern.name for pattern in profile.recommendations]
    # The refactoring target is still recommended; the blind-trust
    # patterns (memories/guesses alone) are not.
    assert "operation-centric-capture" in names
    assert "memories-guesses-apologies" not in names
    assert "escrow-locking" not in names


def test_mixed_space_cross_type_detection():
    """ADD commutes with itself but not with SET."""
    registry = TypeRegistry(initial_state=dict)
    registry.register(
        "ADD", lambda s, op: {**s, "v": s.get("v", 0) + op.args["amount"]}
    )
    registry.register(
        "SET", lambda s, op: {**s, "v": op.args["amount"]},
        declared_commutative=False,
    )
    ops = [
        Operation("ADD", {"amount": 1}, uniquifier="a1", ingress_time=1.0),
        Operation("SET", {"amount": 10}, uniquifier="s1", ingress_time=2.0),
    ]
    profile = classify_operation_space(registry, ops)
    assert profile.per_type_commutative["ADD"]
    assert not profile.cross_type_commutative
    assert not profile.fully_commutative


def test_empty_sample():
    profile = classify_operation_space(build_account_registry(), [])
    assert profile.fully_commutative  # vacuously
    assert profile.per_type_commutative == {}


def test_explain_renders():
    profile = classify_operation_space(build_account_registry(), bank_sample())
    text = explain(profile)
    assert "DEPOSIT: commutative" in text
    assert "Recommended patterns:" in text
    assert "escrow" in text
