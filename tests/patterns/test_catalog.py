"""Catalog integrity and dependency chaining."""

import pytest

from repro.errors import SimulationError
from repro.patterns import CATALOG, pattern_by_name


def test_catalog_nonempty_and_named_uniquely():
    names = [pattern.name for pattern in CATALOG]
    assert len(names) == len(set(names))
    assert len(CATALOG) >= 8


def test_every_pattern_cites_the_paper_and_an_implementation():
    for pattern in CATALOG:
        assert pattern.paper_section.startswith("§")
        assert pattern.implemented_by
        assert pattern.problem and pattern.mechanism


def test_requires_are_satisfiable_within_the_catalog():
    """Every 'requires' capability is provided by some other pattern —
    the taxonomy is closed."""
    provided = {cap for pattern in CATALOG for cap in pattern.provides}
    for pattern in CATALOG:
        for capability in pattern.requires:
            assert capability in provided, (pattern.name, capability)


def test_lookup():
    assert pattern_by_name("uniquifier").paper_section.startswith("§2.1")
    with pytest.raises(SimulationError):
        pattern_by_name("silver-bullet")


def test_implementations_are_importable():
    """Each implemented_by mentions at least one real module path."""
    import importlib

    for pattern in CATALOG:
        module_names = [
            token.strip().split(" ")[0]
            for token in pattern.implemented_by.split(";")
        ]
        imported_any = False
        for name in module_names:
            root = ".".join(name.split(".")[:2])
            try:
                importlib.import_module(root)
                imported_any = True
            except ImportError:
                continue
        assert imported_any, pattern.name
