"""The txn layer's replicated machines: determinism, idempotence, and
the measured weak/strong classification."""

import pytest

from repro.core.operation import Operation
from repro.errors import SimulationError
from repro.patterns import OP_STRONG, OP_WEAK, classify_operation_space
from repro.txn import FuncMachine, ResourceMachine, sample_resource_ops


def _op(kind, uniq, **args):
    return Operation(kind, args, uniquifier=uniq)


def test_reserve_until_capacity_then_decline():
    machine = ResourceMachine({"seats": 2})
    state = machine.initial()
    assert machine.apply(state, _op("RESERVE", "a", category="seats")) == {"ok": True}
    assert machine.apply(state, _op("RESERVE", "b", category="seats")) == {"ok": True}
    assert machine.apply(state, _op("RESERVE", "c", category="seats")) == {"ok": False}
    assert ResourceMachine.granted_count(state, "seats") == 2


def test_reserve_idempotent_by_uniquifier():
    machine = ResourceMachine({"seats": 1})
    state = machine.initial()
    assert machine.apply(state, _op("RESERVE", "a", category="seats")) == {"ok": True}
    assert machine.apply(state, _op("RESERVE", "a", category="seats")) == {"ok": True}
    assert ResourceMachine.granted_count(state, "seats") == 1


def test_cancel_returns_the_unit():
    machine = ResourceMachine({"seats": 1})
    state = machine.initial()
    machine.apply(state, _op("RESERVE", "a", category="seats"))
    assert machine.apply(state, _op("CANCEL", "c", category="seats", target="a")) == {
        "cancelled": True
    }
    assert machine.apply(state, _op("RESERVE", "b", category="seats")) == {"ok": True}


def test_close_stops_grants():
    machine = ResourceMachine({"seats": 3})
    state = machine.initial()
    machine.apply(state, _op("CLOSE", "x", category="seats"))
    assert machine.apply(state, _op("RESERVE", "a", category="seats")) == {"ok": False}


def test_copy_is_independent():
    machine = ResourceMachine({"seats": 2})
    state = machine.initial()
    snapshot = machine.copy(state)
    machine.apply(state, _op("RESERVE", "a", category="seats"))
    assert ResourceMachine.granted_count(snapshot, "seats") == 0


def test_unknown_category_and_type_rejected():
    machine = ResourceMachine({"seats": 1})
    state = machine.initial()
    with pytest.raises(SimulationError):
        machine.apply(state, _op("RESERVE", "a", category="rooms"))
    with pytest.raises(SimulationError):
        machine.apply(state, _op("FROB", "b", category="seats"))
    with pytest.raises(SimulationError):
        ResourceMachine({})


def test_func_machine_routes_by_type():
    machine = FuncMachine(
        initial=lambda: {"n": 0},
        handlers={"ADD": lambda s, op: s.__setitem__("n", s["n"] + op.args["k"])},
    )
    state = machine.initial()
    machine.apply(state, _op("ADD", "a", k=3))
    assert state["n"] == 3
    with pytest.raises(SimulationError):
        machine.apply(state, _op("MUL", "b", k=2))


def test_measured_classification_splits_weak_and_strong():
    """The tentpole's routing premise: the classifier *measures* that the
    escrow-style ops commute (weak fast path) and the overwrite-style ops
    do not (strong path)."""
    machine = ResourceMachine({"seats": 12})
    profile = classify_operation_space(machine.registry(), sample_resource_ops())
    classes = profile.op_classes()
    for kind in ResourceMachine.WEAK_TYPES:
        assert classes[kind] == OP_WEAK, kind
    assert classes["SET_CAPACITY"] == OP_STRONG


def test_reserve_commutes_away_from_the_boundary():
    """Order-insensitivity of the state dicts is what the classifier
    leans on; two RESERVEs in either order produce equal state."""
    machine = ResourceMachine({"seats": 5})
    one = machine.initial()
    machine.apply(one, _op("RESERVE", "a", category="seats"))
    machine.apply(one, _op("RESERVE", "b", category="seats"))
    two = machine.initial()
    machine.apply(two, _op("RESERVE", "b", category="seats"))
    machine.apply(two, _op("RESERVE", "a", category="seats"))
    assert one == two
