"""Executable apologies: compensation wiring, dedup, and the reconcile
path over reported pool conflicts."""

from repro.core.operation import Operation
from repro.resources import FungiblePool
from repro.sim.scheduler import Simulator
from repro.txn import ApologyBook, reconcile_pools


def _op(uniq, kind="RESERVE", **args):
    return Operation(kind, args, uniquifier=uniq, origin="txn0")


def test_retracted_grant_releases_the_unit():
    sim = Simulator(seed=1)
    pool = FungiblePool("seats", 2)
    pool.allocate("a")
    book = ApologyBook(sim, pool=pool)
    apology = book.emit(_op("a"), told={"ok": True}, actual={"ok": False})
    assert apology.action == "release"
    assert pool.holder_of("a") is None
    assert sim.metrics.counters()["txn.apologies"] == 1


def test_upgraded_decline_re_reserves():
    sim = Simulator(seed=1)
    pool = FungiblePool("seats", 2)
    book = ApologyBook(sim, pool=pool)
    apology = book.emit(_op("a"), told={"ok": False}, actual={"ok": True})
    assert apology.action == "re-reserve"
    assert pool.holder_of("a") is not None


def test_pluggable_handler_owns_unwired_types():
    sim = Simulator(seed=1)
    book = ApologyBook(sim)
    seen = []
    book.register_handler("SHIP", lambda ap: seen.append(ap.uniquifier) or True)
    apology = book.emit(
        _op("x", kind="SHIP"), told={"eta": 3}, actual={"eta": 9}
    )
    assert apology.action == "handled:SHIP"
    assert seen == ["x"]
    assert book.human == []


def test_unhandled_apology_lands_on_the_human_ledger():
    sim = Simulator(seed=1)
    book = ApologyBook(sim)
    apology = book.emit(_op("x", kind="SHIP"), told=1, actual=2)
    assert apology.action == "human"
    assert [a.uniquifier for a in book.human] == ["x"]
    assert book.counts() == {"human": 1}


def test_same_uniquifier_apologized_once():
    sim = Simulator(seed=1)
    book = ApologyBook(sim)
    assert book.emit(_op("x"), told=1, actual=2) is not None
    assert book.emit(_op("x"), told=1, actual=2) is None
    assert book.total == 1


def test_reconcile_pools_apologizes_per_conflict():
    """A partition-split pool pair settles through the apology path: the
    conflicted holder on our side is released and told so."""
    sim = Simulator(seed=1)
    east = FungiblePool("rooms", 2)
    west = FungiblePool("rooms", 2)
    east.allocate("alice")   # unit 0 east-side
    west.allocate("bob")     # unit 0 west-side: same room, two guests
    fulfillment = FungiblePool("rooms", 2)
    fulfillment.allocate("alice")
    book = ApologyBook(sim, pool=fulfillment)
    emitted = reconcile_pools(east, west, book, origin="east")
    assert emitted == 1
    assert east.holder_of("alice") is None          # replica grant undone
    assert fulfillment.holder_of("alice") is None   # real unit released
    assert book.entries[0].action == "release"
    assert book.uniquifiers() == {"alice"}
