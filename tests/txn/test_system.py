"""The mixed-consistency fabric end to end: guesses ack immediately,
strong ops wait for quorum order, partitions mint apologies, takeover is
fenced, and everything is seed-deterministic."""

import pytest

from repro.core.operation import Operation
from repro.resources import FungiblePool
from repro.sim.scheduler import Simulator
from repro.txn import MixedTxnSystem, ResourceMachine


def _reserve(uniq):
    return Operation("RESERVE", {"category": "seats"}, uniquifier=uniq)


def _system(sim, capacity=2, **kwargs):
    system = MixedTxnSystem(
        sim, ResourceMachine({"seats": capacity}), **kwargs
    )
    system.start()
    return system


def test_weak_guess_acks_immediately_and_stabilizes_clean():
    sim = Simulator(seed=2)
    system = _system(sim, capacity=4)
    sim.run(until=1.0)
    ticket = system.submit("txn1", _reserve("a"))
    assert ticket.op_class == "weak"
    assert ticket.guess == {"ok": True}          # acked with zero waiting
    assert not ticket.stabilized
    sim.run(until=3.0)
    assert ticket.stabilized
    assert ticket.done.value == {"ok": True}     # the guess held
    counters = sim.metrics.counters()
    assert counters["txn.guesses"] == 1
    assert counters["txn.stabilized"] == 1
    assert counters.get("txn.reordered", 0) == 0
    assert counters.get("txn.apologies", 0) == 0
    assert system.converged()
    system.stop()


def test_strong_op_waits_for_quorum_commit():
    sim = Simulator(seed=2)
    system = _system(sim)
    sim.run(until=1.0)
    ticket = system.submit(
        "txn2",
        Operation("SET_CAPACITY", {"category": "seats", "value": 9},
                  uniquifier="cap"),
    )
    assert ticket.op_class == "strong"
    assert ticket.guess is None                  # no guess for strong ops
    sim.run(until=3.0)
    assert ticket.stabilized
    assert ticket.done.value == {"capacity": 9}
    for replica in system.replicas.values():
        assert ResourceMachine.capacity(replica.stable_state, "seats") == 9
    system.stop()


def test_partitioned_guess_reorders_into_apology():
    """The §5.7 arc: a minority-side replica guesses yes on the last
    seats, the majority sells them for real, and the heal turns the
    guess into a structured, pool-wired apology."""
    sim = Simulator(seed=5)
    fulfillment = FungiblePool("seats", 2)
    system = _system(sim, capacity=2, apology_pool=fulfillment)
    sim.run(until=1.0)
    system.network.partition([
        {"txn0", "txn1", "txn.monitor"}, {"txn2"},
    ])
    majority_a = system.submit("txn0", _reserve("a"))
    majority_b = system.submit("txn0", _reserve("b"))
    lonely = system.submit("txn2", _reserve("w"))
    assert lonely.guess == {"ok": True}          # honest-at-the-time
    fulfillment.allocate("w")                    # app acts on the guess
    sim.run(until=4.0)
    assert majority_a.stabilized and majority_b.stabilized
    assert not lonely.stabilized                 # minority cannot commit
    system.network.heal()
    sim.run(until=8.0)
    assert lonely.stabilized
    assert lonely.done.value == {"ok": False}    # the truth
    assert system.reordered_uniquifiers() == {"w"}
    assert system.apology_uniquifiers() == {"w"}
    assert system.book.entries[0].action == "release"
    assert fulfillment.holder_of("w") is None    # compensation executed
    counters = sim.metrics.counters()
    assert counters["txn.reordered"] == 1
    assert counters["txn.apologies"] == 1
    assert system.converged()
    assert all(not r.prefix_violation for r in system.replicas.values())
    system.stop()


def test_fenced_takeover_rejects_deposed_leader():
    """Partition the leader away from the monitor: the successor is
    promoted under a fresh epoch, serves strong ops, and the deposed
    leader's post-heal batches bounce off the fence."""
    sim = Simulator(seed=7)
    system = _system(sim, capacity=4, detect_timeout=0.8)
    sim.run(until=1.0)
    assert system.serving == "txn0"
    first_epoch = system.epoch
    system.network.partition([
        {"txn0"}, {"txn1", "txn2", "txn.monitor"},
    ])
    stale = system.submit("txn0", _reserve("stale"))  # guessed on the
    assert stale.guess == {"ok": True}                # wrong side
    sim.run(until=4.0)
    assert system.serving == "txn1"
    assert system.epoch > first_epoch
    strong = system.submit(
        "txn1",
        Operation("SET_CAPACITY", {"category": "seats", "value": 6},
                  uniquifier="cap"),
    )
    sim.run(until=6.0)
    assert strong.stabilized                     # majority side still works
    system.network.heal()
    sim.run(until=12.0)
    assert not system.replicas["txn0"].leading   # stepped down
    assert stale.stabilized                      # re-routed and committed
    assert system.converged()
    assert all(not r.prefix_violation for r in system.replicas.values())
    # A committed strong ack was never reordered.
    assert "cap" not in system.reordered_uniquifiers()
    system.stop()


def test_deposed_leader_batches_bounce_off_the_fence():
    """A *false* conviction: the leader keeps its quorum but loses the
    monitor. The promoted successor is alone and cannot sync; the old
    regime keeps committing. At heal the fence does its one job — the
    deposed regime's in-flight batches bounce, it steps down, and
    nothing it committed is lost."""
    sim = Simulator(seed=9)
    system = _system(sim, capacity=4, detect_timeout=0.8)
    sim.run(until=1.0)
    system.network.partition([
        {"txn0", "txn2"}, {"txn1", "txn.monitor"},
    ])
    live = system.submit("txn0", _reserve("live"))
    sim.run(until=4.0)
    assert system.serving == "txn1"              # conviction happened...
    assert live.stabilized                       # ...but the old regime
    assert not system.replicas["txn1"]._synced   # still commits; the new
    system.network.heal()                        # one stalls, minority-side
    sim.run(until=10.0)
    assert not system.replicas["txn0"].leading
    assert system.replicas["txn1"]._synced
    assert system.converged()
    # The old regime's committed write survived the regime change.
    assert "live" not in system.reordered_uniquifiers()
    assert all(not r.prefix_violation for r in system.replicas.values())
    system.stop()


def test_stale_epoch_batch_is_rejected():
    """The fence itself: an ordering batch stamped with a deposed epoch
    bounces with a ``stale`` reply and is counted, whatever it carries."""
    sim = Simulator(seed=13)
    system = _system(sim)
    sim.run(until=1.0)
    replies = []

    def probe():
        reply = yield from system.replicas["txn2"].endpoint.call(
            "txn0", "TXN_ORDER",
            {"epoch": 0, "leader": "txn2", "base": 0, "prev_epoch": 0,
             "entries": [], "commit": 0},
        )
        replies.append(reply)

    sim.spawn(probe(), name="probe")
    sim.run(until=2.0)
    assert replies and replies[0]["stale"]
    assert replies[0]["epoch"] >= 1
    assert sim.metrics.counters()["txn.stale_batches_rejected"] == 1
    system.stop()


def _run_partition_story(seed):
    sim = Simulator(seed=seed)
    system = _system(sim, capacity=2)
    sim.run(until=1.0)
    system.network.partition([{"txn0", "txn1", "txn.monitor"}, {"txn2"}])
    system.submit("txn0", _reserve("a"))
    system.submit("txn0", _reserve("b"))
    system.submit("txn2", _reserve("w"))
    sim.run(until=4.0)
    system.network.heal()
    sim.run(until=8.0)
    system.stop()
    return sim.metrics.counters(), sim.now


def test_seed_identical_runs_are_bit_identical():
    """Determinism extends through the txn layer: same seed, same story,
    identical counters and end time."""
    one = _run_partition_story(11)
    two = _run_partition_story(11)
    assert one == two


def test_unmeasured_op_type_defaults_to_strong():
    sim = Simulator(seed=2)
    system = _system(sim)
    ticket_class = system.replicas["txn0"].op_class(
        Operation("MYSTERY", {"category": "seats"}, uniquifier="m")
    )
    assert ticket_class == "strong"
    system.stop()


def test_two_replica_minimum_enforced():
    sim = Simulator(seed=2)
    with pytest.raises(Exception):
        MixedTxnSystem(sim, ResourceMachine({"seats": 1}),
                       replica_names=("solo",))
