"""Replicated clearing: idempotence, overdrafts, coordination."""

from repro.bank import Check, ClearOutcome, ReplicatedBank


def check(number, amount, account="acct1"):
    return Check("fnb", account, number, "payee", amount)


def test_clear_within_balance():
    bank = ReplicatedBank(num_replicas=2, initial_deposit=1000.0)
    assert bank.clear_check("branch0", check(1, 100.0)) is ClearOutcome.CLEARED
    assert bank.balances()["branch0"] == 900.0


def test_local_bounce_when_overdrawn():
    bank = ReplicatedBank(num_replicas=1, initial_deposit=50.0)
    assert bank.clear_check("branch0", check(1, 100.0)) is ClearOutcome.BOUNCED
    assert bank.balances()["branch0"] == 50.0


def test_same_check_twice_at_one_branch_is_duplicate():
    bank = ReplicatedBank(num_replicas=2, initial_deposit=1000.0)
    bank.clear_check("branch0", check(1, 100.0))
    assert bank.clear_check("branch0", check(1, 100.0)) is ClearOutcome.DUPLICATE
    assert bank.balances()["branch0"] == 900.0


def test_same_check_at_two_branches_collapses_on_reconcile():
    """Both replicas clear the same check; the check number makes the
    processing idempotent — exactly one debit survives (§6.2)."""
    bank = ReplicatedBank(num_replicas=2, initial_deposit=1000.0)
    bank.clear_check("branch0", check(1, 100.0))
    bank.clear_check("branch1", check(1, 100.0))
    bank.reconcile()
    assert bank.converged()
    assert set(bank.balances().values()) == {900.0}


def test_disconnected_replicas_can_jointly_overdraft():
    """600 + 600 both clear locally against 1000; reconciliation reveals
    the overdraft and the apology handler charges the fee."""
    bank = ReplicatedBank(num_replicas=2, initial_deposit=1000.0, overdraft_fee=30.0)
    assert bank.clear_check("branch0", check(1, 600.0)) is ClearOutcome.CLEARED
    assert bank.clear_check("branch1", check(2, 600.0)) is ClearOutcome.CLEARED
    apologies = bank.reconcile()
    assert len(apologies) >= 1
    assert bank.overdraft_count() >= 1
    assert bank.apologies.counts()["automated"] >= 1  # fee handler absorbed it


def test_coordination_threshold_prevents_big_check_overdraft():
    """The $10,000 rule: the big check consults the other replica first
    and sees the funds are already spoken for."""
    bank = ReplicatedBank(
        num_replicas=2, initial_deposit=1000.0, coordination_threshold=500.0
    )
    assert bank.clear_check("branch0", check(1, 600.0)) is ClearOutcome.CLEARED
    # 600 exceeds the threshold: branch1 coordinates, learns of the first
    # clear, and bounces rather than overdraw.
    assert bank.clear_check("branch1", check(2, 600.0)) is ClearOutcome.BOUNCED
    assert bank.coordinations >= 1
    bank.reconcile()
    assert bank.overdraft_count() == 0


def test_small_checks_skip_coordination():
    bank = ReplicatedBank(
        num_replicas=2, initial_deposit=1000.0, coordination_threshold=500.0
    )
    bank.clear_check("branch0", check(1, 10.0))
    assert bank.coordinations == 0


def test_unreachable_replica_not_consulted():
    """Coordination is best effort: a partitioned peer cannot be asked,
    so the rule stays probabilistic at the margin (§5.2)."""
    bank = ReplicatedBank(
        num_replicas=2,
        initial_deposit=1000.0,
        coordination_threshold=500.0,
        reachable=lambda a, b: False,
    )
    bank.clear_check("branch0", check(1, 600.0))
    assert bank.clear_check("branch1", check(2, 600.0)) is ClearOutcome.CLEARED
    apologies = bank.reconcile()
    assert bank.overdraft_count() >= 1


def test_balances_converge_after_reconcile():
    bank = ReplicatedBank(num_replicas=3, initial_deposit=1000.0)
    bank.clear_check("branch0", check(1, 100.0))
    bank.clear_check("branch1", check(2, 200.0))
    bank.deposit("branch2", 50.0, uniquifier="dep-x")
    bank.reconcile()
    assert bank.converged()
    assert set(bank.balances().values()) == {750.0}
