"""Account op-space: commutativity, balances, holds."""

import pytest

from repro.bank import Check, build_account_registry
from repro.bank.account import available_of, balance_of
from repro.core import Operation, check_acid2
from repro.errors import SimulationError


def ops_sample():
    return [
        Operation("DEPOSIT", {"amount": 100.0}, uniquifier="d1", ingress_time=1.0),
        Operation("CLEAR_CHECK", {"amount": 30.0}, uniquifier="c1", ingress_time=2.0),
        Operation("FEE", {"amount": 5.0}, uniquifier="f1", ingress_time=3.0),
    ]


def test_fold_computes_balance():
    registry = build_account_registry()
    state = registry.initial_state()
    for op in ops_sample():
        state = registry.apply(state, op)
    assert balance_of(state) == 65.0


def test_account_ops_are_acid2():
    registry = build_account_registry()
    report = check_acid2(registry, ops_sample())
    assert report.ok, report.failures


def test_states_structurally_equal_across_orders():
    registry = build_account_registry()
    forward = registry.initial_state()
    for op in ops_sample():
        forward = registry.apply(forward, op)
    backward = registry.initial_state()
    for op in reversed(ops_sample()):
        backward = registry.apply(backward, op)
    assert forward == backward


def test_hold_affects_available_not_balance():
    registry = build_account_registry()
    state = registry.apply(
        registry.initial_state(),
        Operation("DEPOSIT", {"amount": 100.0, "hold": True}, uniquifier="d1"),
    )
    assert balance_of(state) == 100.0
    assert available_of(state) == 0.0
    state = registry.apply(
        state, Operation("RELEASE_HOLD", {"amount": 100.0}, uniquifier="r1")
    )
    assert available_of(state) == 100.0


def test_bounce_debit_includes_fee():
    registry = build_account_registry()
    state = registry.apply(
        registry.initial_state(),
        Operation("BOUNCE_DEBIT", {"amount": 130.0}, uniquifier="b1"),
    )
    assert balance_of(state) == -130.0


def test_check_validation():
    with pytest.raises(SimulationError):
        Check("fnb", "acct1", 7, "payee", amount=0.0)
    with pytest.raises(SimulationError):
        Check("fnb", "acct1", 0, "payee", amount=10.0)


def test_check_uniquifier_is_functional():
    a = Check("fnb", "acct1", 7, "alice", 10.0)
    b = Check("fnb", "acct1", 7, "alice", 10.0)
    assert a.uniquifier == b.uniquifier == "fnb:acct1:7"
