"""Statements: immutability, chaining, late arrivals next month."""

import pytest

from repro.bank import Check, ReplicatedBank, StatementBook
from repro.errors import SimulationError


def check(number, amount):
    return Check("fnb", "acct1", number, "payee", amount)


def test_single_statement_captures_all():
    bank = ReplicatedBank(num_replicas=1, initial_deposit=1000.0)
    bank.clear_check("branch0", check(1, 100.0))
    book = StatementBook(bank.replica("branch0"))
    statement = book.close("march")
    assert statement.closing_balance == 900.0
    assert len(statement.entries) == 2  # opening deposit + the check
    book.check_exactly_once()
    assert book.chaining_consistent()


def test_late_arriving_check_lands_next_month():
    """branch1 cleared a check branch0 hadn't heard of at March close;
    it shows up on April's statement, March unmodified (§6.2)."""
    bank = ReplicatedBank(num_replicas=2, initial_deposit=1000.0)
    book = StatementBook(bank.replica("branch0"))
    bank.clear_check("branch1", check(1, 100.0))  # floating elsewhere
    march = book.close("march")
    assert march.closing_balance == 1000.0
    bank.reconcile()  # now branch0 learns of it
    april = book.close("april")
    assert march.closing_balance == 1000.0  # immutable
    assert april.opening_balance == 1000.0
    assert april.closing_balance == 900.0
    book.check_exactly_once()
    assert book.chaining_consistent()


def test_every_op_on_exactly_one_statement():
    bank = ReplicatedBank(num_replicas=2, initial_deposit=1000.0)
    book = StatementBook(bank.replica("branch0"))
    for i in range(1, 6):
        branch = "branch0" if i % 2 else "branch1"
        bank.clear_check(branch, check(i, 10.0 * i))
        if i == 3:
            book.close("m1")
            bank.reconcile()
    bank.reconcile()
    book.close("m2")
    book.check_exactly_once()
    assert book.chaining_consistent()


def test_duplicate_entry_detection():
    bank = ReplicatedBank(num_replicas=1, initial_deposit=100.0)
    book = StatementBook(bank.replica("branch0"))
    first = book.close("m1")
    # Manufacture corruption: re-issue the same entries.
    book.statements.append(first)
    with pytest.raises(SimulationError):
        book.check_exactly_once()


def test_empty_month():
    bank = ReplicatedBank(num_replicas=1, initial_deposit=100.0)
    book = StatementBook(bank.replica("branch0"))
    book.close("m1")
    quiet = book.close("m2")
    assert quiet.entries == ()
    assert quiet.opening_balance == quiet.closing_balance == 100.0
    assert book.chaining_consistent()
