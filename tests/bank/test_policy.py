"""Deposit desk: hold policy by standing, bounce handling."""

import pytest

from repro.bank import Check, CustomerStanding, DepositDesk, ReplicatedBank
from repro.bank.account import available_of
from repro.errors import SimulationError


def brother_in_law_check(amount=100.0):
    return Check("otherbank", "bil-acct", 42, "you", amount)


def make_desk(initial=1000.0):
    bank = ReplicatedBank(num_replicas=1, initial_deposit=initial)
    return bank, DepositDesk(bank, "branch0", bounce_fee=30.0)


def test_good_standing_no_hold():
    bank, desk = make_desk()
    desk.deposit_check(brother_in_law_check(), CustomerStanding.GOOD)
    assert bank.balances()["branch0"] == 1100.0
    assert bank.available("branch0") == 1100.0  # spendable immediately


def test_risky_standing_holds_funds():
    bank, desk = make_desk()
    desk.deposit_check(brother_in_law_check(), CustomerStanding.RISKY)
    assert bank.balances()["branch0"] == 1100.0
    assert bank.available("branch0") == 1000.0  # the $100 is held


def test_bounce_debits_amount_plus_fee():
    """The §6.2 script: +100, then the check bounces and you're out 130."""
    bank, desk = make_desk()
    deposit_id = desk.deposit_check(brother_in_law_check(), CustomerStanding.GOOD)
    desk.resolve(deposit_id, bounced=True)
    assert bank.balances()["branch0"] == 1000.0 + 100.0 - 130.0


def test_bounce_refutes_the_guess():
    bank, desk = make_desk()
    deposit_id = desk.deposit_check(brother_in_law_check(), CustomerStanding.GOOD)
    desk.resolve(deposit_id, bounced=True)
    assert bank.replica("branch0").guesses.get(deposit_id).outcome == "wrong"


def test_clearance_confirms_and_releases_hold():
    bank, desk = make_desk()
    deposit_id = desk.deposit_check(brother_in_law_check(), CustomerStanding.RISKY)
    desk.resolve(deposit_id, bounced=False)
    assert bank.available("branch0") == 1100.0
    assert bank.replica("branch0").guesses.get(deposit_id).outcome == "confirmed"


def test_bounce_on_risky_also_releases_hold():
    bank, desk = make_desk()
    deposit_id = desk.deposit_check(brother_in_law_check(), CustomerStanding.RISKY)
    desk.resolve(deposit_id, bounced=True)
    # +100 deposit, -130 bounce, hold released: available == balance.
    assert bank.balances()["branch0"] == 970.0
    assert bank.available("branch0") == 970.0


def test_good_standing_exposes_bank_to_overdraft():
    """Spend the uncollected funds, then the check bounces: the balance
    dips — the optimistic guess cost real money."""
    bank, desk = make_desk(initial=10.0)
    deposit_id = desk.deposit_check(brother_in_law_check(100.0), CustomerStanding.GOOD)
    assert bank.clear_check("branch0", Check("fnb", "acct1", 1, "shop", 105.0)).value == "cleared"
    desk.resolve(deposit_id, bounced=True)
    # +100 deposit, -105 spent, -130 bounce, and the bounce overdrew the
    # account so the automated apology handler added the $30 overdraft fee.
    assert bank.balances()["branch0"] == 10.0 + 100.0 - 105.0 - 130.0 - 30.0
    assert bank.overdraft_count() >= 1


def test_unknown_deposit_rejected():
    _bank, desk = make_desk()
    with pytest.raises(SimulationError):
        desk.resolve("ghost", bounced=True)


def test_resolve_is_single_shot():
    bank, desk = make_desk()
    deposit_id = desk.deposit_check(brother_in_law_check(), CustomerStanding.GOOD)
    desk.resolve(deposit_id, bounced=False)
    with pytest.raises(SimulationError):
        desk.resolve(deposit_id, bounced=False)
