"""Interbank clearing: the check's round trip, end to end."""

import pytest

from repro.bank import (
    Check,
    ClearOutcome,
    CustomerStanding,
    InterbankNetwork,
    ReplicatedBank,
)
from repro.errors import SimulationError
from repro.sim import Simulator


def make_network(bil_funds=1000.0):
    sim = Simulator(seed=7)
    network = InterbankNetwork(sim, forwarding_delay=2.0)
    yours = ReplicatedBank(num_replicas=1, initial_deposit=1000.0,
                           clock=lambda: sim.now)
    bils = ReplicatedBank(num_replicas=1, initial_deposit=bil_funds,
                          clock=lambda: sim.now)
    network.add_bank("yourbank", yours)
    network.add_bank("bilbank", bils)
    return sim, network


def bil_check(amount=100.0):
    return Check("bilbank", "branch-acct", 42, "you", amount)


def test_good_check_clears_and_moves_money():
    sim, network = make_network(bil_funds=1000.0)

    def story():
        outcome = yield from network.deposit_and_forward(
            "yourbank", bil_check(100.0), CustomerStanding.GOOD
        )
        return outcome

    outcome = sim.run_process(story())
    assert outcome is ClearOutcome.CLEARED
    assert network.bank("yourbank").balances()["branch0"] == 1100.0
    assert network.bank("bilbank").balances()["branch0"] == 900.0
    # Money conserved: 2000 before, 2000 after.
    assert network.conservation_check() == 2000.0


def test_bounced_check_costs_the_depositor():
    sim, network = make_network(bil_funds=10.0)  # brother-in-law is broke

    def story():
        outcome = yield from network.deposit_and_forward(
            "yourbank", bil_check(100.0), CustomerStanding.GOOD
        )
        return outcome

    outcome = sim.run_process(story())
    assert outcome is ClearOutcome.BOUNCED
    # +100 then -130: the §6.2 arithmetic.
    assert network.bank("yourbank").balances()["branch0"] == 970.0
    assert network.bank("bilbank").balances()["branch0"] == 10.0
    assert network.bounces == 1


def test_risky_standing_holds_until_the_answer():
    sim, network = make_network()
    held_during_transit = {}

    def story():
        proc = sim.spawn(
            network.deposit_and_forward(
                "yourbank", bil_check(100.0), CustomerStanding.RISKY
            )
        )
        sim.schedule(1.0, lambda: held_during_transit.update(
            available=network.bank("yourbank").available("branch0")
        ))
        yield proc

    sim.run_process(story())
    assert held_during_transit["available"] == 1000.0  # the 100 was held
    assert network.bank("yourbank").available("branch0") == 1100.0  # released


def test_represented_check_clears_money_once():
    """The same check deposited twice (lost-mail paranoia): the drawee's
    uniquifier dedup debits once; the depositor's desk treats the
    re-presentment as cleared."""
    sim, network = make_network()

    def story():
        first = yield from network.deposit_and_forward(
            "yourbank", bil_check(100.0), CustomerStanding.GOOD
        )
        second_check = bil_check(100.0)  # identical instrument
        desk = network.desk("yourbank")
        # The desk would refuse a duplicate deposit_id; simulate the
        # drawee-side presentment only.
        outcome = network.bank("bilbank").clear_check("branch0", second_check)
        return first, outcome

    first, second = sim.run_process(story())
    assert first is ClearOutcome.CLEARED
    assert second is ClearOutcome.DUPLICATE
    assert network.bank("bilbank").balances()["branch0"] == 900.0


def test_unknown_drawee_rejected():
    sim, network = make_network()
    ghost = Check("ghostbank", "a", 1, "you", 10.0)

    def story():
        yield from network.deposit_and_forward(
            "yourbank", ghost, CustomerStanding.GOOD
        )

    with pytest.raises(SimulationError):
        sim.run_process(story())


def test_duplicate_bank_registration_rejected():
    sim = Simulator()
    network = InterbankNetwork(sim)
    bank = ReplicatedBank(num_replicas=1)
    network.add_bank("b", bank)
    with pytest.raises(SimulationError):
        network.add_bank("b", bank)
