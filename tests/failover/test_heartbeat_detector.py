"""Heartbeats over the real fabric; detectors accruing suspicion from
observed gaps — including convicting a live-but-partitioned node and
recording the contradiction when it speaks again."""

import pytest

from repro.errors import SimulationError
from repro.failover import (
    FixedTimeoutDetector,
    HeartbeatEmitter,
    PhiAccrualDetector,
)
from repro.net.latency import FixedLatency
from repro.net.network import LinkConfig, Network
from repro.net.rpc import Endpoint
from repro.sim import Simulator


def make_fabric(seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, default_link=LinkConfig(latency=FixedLatency(0.001)))
    return sim, network


def wire_monitor(sim, network, detector, name="monitor"):
    monitor = Endpoint(network, name)
    monitor.register(
        "HEARTBEAT",
        lambda _ep, msg: (detector.heartbeat(msg.payload["node"]), {})[1],
    )
    monitor.start()
    return monitor


def test_emitter_casts_on_schedule():
    sim, network = make_fabric()
    seen = []
    monitor = Endpoint(network, "monitor")
    monitor.register(
        "HEARTBEAT", lambda _ep, msg: (seen.append(msg.payload), {})[1]
    )
    monitor.start()
    node = Endpoint(network, "n1")
    node.start()
    emitter = HeartbeatEmitter(node, "monitor", interval=0.5)
    emitter.start()
    sim.run(until=2.6)
    emitter.stop()
    assert [beat["seq"] for beat in seen] == [1, 2, 3, 4, 5]
    assert all(beat["node"] == "n1" for beat in seen)


def test_fixed_timeout_convicts_silent_node():
    sim, network = make_fabric()
    detector = FixedTimeoutDetector(sim, ["n1"], timeout=1.0)
    wire_monitor(sim, network, detector)
    node = Endpoint(network, "n1")
    node.start()
    emitter = HeartbeatEmitter(node, "monitor", interval=0.25)
    emitter.start()
    detector.start(poll_interval=0.1)
    sim.run(until=3.0)
    assert not detector.convicted("n1")
    network.detach("n1")  # crash: heartbeats stop arriving
    sim.run(until=6.0)
    assert detector.convicted("n1")
    # Convicted a bit over `timeout` after the last arrival.
    assert detector.conviction_time("n1") == pytest.approx(4.0, abs=0.2)
    assert not detector.was_contradicted("n1")


def test_conviction_of_live_node_is_contradicted_on_next_heartbeat():
    sim, network = make_fabric()
    detector = FixedTimeoutDetector(sim, ["n1"], timeout=1.0)
    wire_monitor(sim, network, detector)
    node = Endpoint(network, "n1")
    node.start()
    emitter = HeartbeatEmitter(node, "monitor", interval=0.25)
    emitter.start()
    detector.start(poll_interval=0.1)
    sim.run(until=2.0)
    network.partition([{"n1"}, {"monitor"}])  # alive, just unreachable
    sim.run(until=5.0)
    assert detector.convicted("n1")
    network.heal()
    sim.run(until=6.0)
    # The "corpse" spoke: the guess is recorded as wrong.
    assert detector.was_contradicted("n1")
    assert sim.metrics.counter("failover.false_convictions").value == 1
    # The conviction itself stays latched (the takeover already happened).
    assert detector.convicted("n1")


def test_pardon_allows_reconviction():
    sim, network = make_fabric()
    detector = FixedTimeoutDetector(sim, ["n1"], timeout=0.5)
    detector.start(poll_interval=0.1)
    sim.run(until=1.0)
    assert detector.convicted("n1")  # never heard from at all
    detector.pardon("n1")
    assert not detector.convicted("n1")
    detector.heartbeat("n1")
    sim.run(until=1.2)
    assert not detector.convicted("n1")
    sim.run(until=2.0)
    assert detector.convicted("n1")  # silent again


def test_observers_fire_on_convict_and_contradiction():
    sim, _network = make_fabric()
    detector = FixedTimeoutDetector(sim, ["n1"], timeout=0.5)
    events = []
    detector.on_convict(lambda node, at: events.append(("convict", node, at)))
    detector.on_contradiction(lambda node, at: events.append(("contra", node, at)))
    detector.start(poll_interval=0.1)
    sim.run(until=1.0)
    detector.heartbeat("n1")
    assert [e[0] for e in events] == ["convict", "contra"]
    assert all(e[1] == "n1" for e in events)


def test_phi_accrual_tracks_interarrival_distribution():
    sim, _network = make_fabric()
    detector = PhiAccrualDetector(sim, ["n1"], threshold=8.0, min_samples=3)
    # Regular 0.2s heartbeats delivered by hand (no fabric needed).
    for i in range(1, 11):
        sim.schedule_at(0.2 * i, detector.heartbeat, "n1")
    sim.run(until=2.0)
    # Right after an arrival, suspicion is tiny; after a long silence it
    # crosses the conviction line.
    assert detector.suspicion("n1") < 0.5
    sim.run(until=2.1)
    assert detector.suspicion("n1") < 1.0
    sim.run(until=4.0)
    assert detector.suspicion("n1") >= 1.0


def test_phi_accrual_bootstraps_like_fixed_timeout():
    sim, _network = make_fabric()
    detector = PhiAccrualDetector(
        sim, ["n1"], threshold=8.0, min_samples=3, bootstrap_timeout=1.0
    )
    detector.start(poll_interval=0.1)
    # One sample is below min_samples: the fixed rule applies.
    detector.heartbeat("n1")
    sim.run(until=2.0)
    assert detector.convicted("n1")


def test_detector_is_deterministic():
    def run_once():
        sim, network = make_fabric(seed=11)
        detector = PhiAccrualDetector(sim, ["n1"], threshold=4.0)
        wire_monitor(sim, network, detector)
        node = Endpoint(network, "n1")
        node.start()
        emitter = HeartbeatEmitter(node, "monitor", interval=0.3, jitter=0.2)
        emitter.start()
        detector.start(poll_interval=0.1)
        sim.run(until=4.0)
        network.detach("n1")
        sim.run(until=10.0)
        return detector.conviction_time("n1"), sim.metrics.counters()

    assert run_once() == run_once()


def test_bad_parameters_rejected():
    sim, _network = make_fabric()
    with pytest.raises(SimulationError):
        FixedTimeoutDetector(sim, ["n1"], timeout=0.0)
    with pytest.raises(SimulationError):
        PhiAccrualDetector(sim, ["n1"], threshold=0.0)
    detector = FixedTimeoutDetector(sim, ["n1"])
    with pytest.raises(SimulationError):
        detector.start(poll_interval=0.0)
