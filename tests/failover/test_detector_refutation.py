"""Detector verdicts as refutable rumors: ``bind_view`` turns a
conviction into a local suspicion and a post-conviction heartbeat — the
contradiction — into an incarnation-advancing clearance. The wrong-guess
ledger (``failover.false_convictions``) bills each false takeover exactly
once, no matter how many heartbeats the 'corpse' sends afterwards."""

import pytest

from repro.cluster.gossip_membership import ALIVE, DEAD, SUSPECT, MembershipView
from repro.failover import FixedTimeoutDetector, HeartbeatEmitter
from repro.net.latency import FixedLatency
from repro.net.network import LinkConfig, Network
from repro.net.rpc import Endpoint
from repro.sim import Simulator


def make_watched_node(seed=0, timeout=1.0, suspicion_timeout=3.0):
    sim = Simulator(seed=seed)
    network = Network(sim, default_link=LinkConfig(latency=FixedLatency(0.001)))
    detector = FixedTimeoutDetector(sim, ["n1"], timeout=timeout)
    view = MembershipView("monitor", sim, suspicion_timeout=suspicion_timeout)
    view.seed(["monitor", "n1"])
    detector.bind_view(view)
    monitor = Endpoint(network, "monitor")
    monitor.register(
        "HEARTBEAT",
        lambda _ep, msg: (detector.heartbeat(msg.payload["node"]), {})[1],
    )
    monitor.start()
    node = Endpoint(network, "n1")
    node.start()
    emitter = HeartbeatEmitter(node, "monitor", interval=0.25)
    emitter.start()
    detector.start(poll_interval=0.1)
    return sim, network, detector, view


def test_conviction_becomes_suspicion_not_shared_truth():
    sim, network, detector, view = make_watched_node()
    sim.run(until=2.0)
    assert view.status_of("n1") == ALIVE
    network.partition([{"n1"}, {"monitor"}])  # alive, just unreachable
    sim.run(until=5.0)
    assert detector.convicted("n1")
    # The verdict landed in the local view as a refutable suspicion.
    assert view.status_of("n1") == SUSPECT


def test_post_conviction_heartbeat_clears_suspicion_via_incarnation():
    sim, network, detector, view = make_watched_node()
    sim.run(until=2.0)
    network.partition([{"n1"}, {"monitor"}])
    sim.run(until=5.0)
    assert view.status_of("n1") == SUSPECT
    inc_at_suspicion = view.incarnation_of("n1")
    network.heal()
    sim.run(until=6.0)
    # The corpse spoke: the contradiction cleared the suspicion by
    # advancing the member's incarnation past the accusation — the same
    # precedence a travelling refutation would have used.
    assert view.status_of("n1") == ALIVE
    assert view.incarnation_of("n1") > inc_at_suspicion
    # The stale suspicion timer fires inert: the verdict never hardens.
    sim.run(until=10.0)
    assert view.status_of("n1") == ALIVE


def test_false_convictions_increments_exactly_once():
    sim, network, detector, view = make_watched_node()
    sim.run(until=2.0)
    network.partition([{"n1"}, {"monitor"}])
    sim.run(until=5.0)
    assert detector.convicted("n1")
    network.heal()
    # Many heartbeats arrive after the conviction; only the first is the
    # contradiction — one wrong guess, one line in the ledger.
    sim.run(until=9.0)
    assert sim.metrics.counter("failover.false_convictions").value == 1
    assert view.status_of("n1") == ALIVE


def test_unrefuted_conviction_hardens_to_dead_in_the_view():
    sim, network, detector, view = make_watched_node(suspicion_timeout=1.5)
    sim.run(until=2.0)
    network.detach("n1")  # genuinely gone, never to speak again
    sim.run(until=8.0)
    assert detector.convicted("n1")
    assert view.status_of("n1") == DEAD
    assert not detector.was_contradicted("n1")
    assert (
        sim.metrics.counters().get("failover.false_convictions", 0) == 0
    )


def test_reconviction_after_pardon_bills_a_second_false_guess():
    """Each conviction/contradiction pair is its own wrong guess: pardon,
    convict again, contradict again — the ledger reads two."""
    sim, network, detector, view = make_watched_node()
    sim.run(until=2.0)
    network.partition([{"n1"}, {"monitor"}])
    sim.run(until=5.0)
    network.heal()
    sim.run(until=6.0)
    assert sim.metrics.counter("failover.false_convictions").value == 1
    detector.pardon("n1")
    network.partition([{"n1"}, {"monitor"}])
    sim.run(until=9.0)
    assert detector.convicted("n1")
    network.heal()
    sim.run(until=10.5)
    assert sim.metrics.counter("failover.false_convictions").value == 2
    assert view.status_of("n1") == ALIVE
