"""Leases and the monotonic epoch: the token totally orders regimes."""

import pytest

from repro.errors import SimulationError, StaleEpochError
from repro.failover import Lease, LeaseManager
from repro.sim import Simulator


def test_epoch_bumps_on_every_grant():
    sim = Simulator(seed=0)
    leases = LeaseManager(sim)
    first = leases.grant("east", duration=2.0)
    second = leases.grant("west", duration=2.0)
    regrant = leases.grant("west", duration=2.0)
    assert (first.epoch, second.epoch, regrant.epoch) == (1, 2, 3)
    assert leases.epoch == 3
    assert leases.current is regrant
    assert sim.metrics.counter("failover.leases_granted").value == 3


def test_lease_expires_in_sim_time():
    sim = Simulator(seed=0)
    leases = LeaseManager(sim)
    lease = leases.grant("east", duration=2.0)
    assert lease.valid(sim.now)
    assert lease.remaining(sim.now) == pytest.approx(2.0)
    sim.run(until=1.5)
    assert lease.valid(sim.now) and not leases.expired()
    sim.run(until=2.5)
    assert not lease.valid(sim.now)
    assert leases.expired()
    assert lease.remaining(sim.now) == 0.0


def test_renew_extends_current_regime():
    sim = Simulator(seed=0)
    leases = LeaseManager(sim)
    lease = leases.grant("east", duration=2.0)
    sim.run(until=1.0)
    renewed = leases.renew(lease)
    assert renewed.epoch == lease.epoch          # same regime, no bump
    assert renewed.expires_at == pytest.approx(3.0)
    assert leases.current is renewed


def test_renew_of_stale_epoch_raises():
    sim = Simulator(seed=0)
    leases = LeaseManager(sim)
    old = leases.grant("east", duration=2.0)
    leases.grant("west", duration=2.0)           # new regime deposes east
    with pytest.raises(StaleEpochError) as excinfo:
        leases.renew(old)
    assert excinfo.value.epoch == 1
    assert excinfo.value.current == 2


def test_bad_duration_rejected():
    sim = Simulator(seed=0)
    leases = LeaseManager(sim)
    with pytest.raises(SimulationError):
        leases.grant("east", duration=0.0)


def test_lease_is_immutable():
    lease = Lease(holder="east", epoch=1, granted_at=0.0, duration=1.0)
    with pytest.raises(AttributeError):
        lease.epoch = 5
