"""The failover stack on the log-shipping pair: conviction drives a
fenced promotion, the god-mode path survives unchanged, and the fenced
vs unfenced difference is visible at the replica state level."""

import pytest

from repro.errors import StaleEpochError
from repro.failover import (
    FailoverController,
    FixedTimeoutDetector,
    LogshipFailover,
)
from repro.logship import LogShippingSystem, ShipMode
from repro.net.latency import FixedLatency
from repro.sim import Simulator


def build(fenced=True, seed=0):
    sim = Simulator(seed=seed)
    system = LogShippingSystem(
        ShipMode.ASYNC,
        ship_interval=0.05,
        wan_latency=FixedLatency(0.01),
        sim=sim,
    )
    failover = LogshipFailover(
        system,
        fenced=fenced,
        heartbeat_interval=0.25,
        detector=FixedTimeoutDetector(sim, [system.serving], timeout=1.0),
        poll_interval=0.1,
    )
    return sim, system, failover


def cut(system):
    """Partition the serving site away from backup + clients + monitor —
    without killing it."""
    system.network.partition(
        [{"east"}, {"west", "lsclient", "failover.monitor"}]
    )


def test_generic_controller_promotes_on_primary_conviction():
    sim = Simulator(seed=0)
    detector = FixedTimeoutDetector(sim, ["a"], timeout=0.5)
    promoted = []
    controller = FailoverController(
        sim,
        detector,
        primary_of=lambda: "a",
        successor_of=lambda node: "b",
        promote=lambda node, lease: promoted.append((node, lease.epoch)),
    )
    detector.start(poll_interval=0.1)
    sim.run(until=1.0)
    detector.stop()
    assert promoted == [("b", 1)]
    assert controller.takeovers == 1
    assert sim.metrics.counter("failover.auto_takeovers").value == 1


def test_generic_controller_ignores_nonprimary_convictions():
    sim = Simulator(seed=0)
    detector = FixedTimeoutDetector(sim, ["b"], timeout=0.5)
    promoted = []
    FailoverController(
        sim,
        detector,
        primary_of=lambda: "a",          # the convicted node is NOT primary
        successor_of=lambda node: "b",
        promote=lambda node, lease: promoted.append(node),
    )
    detector.start(poll_interval=0.1)
    sim.run(until=1.0)
    detector.stop()
    assert promoted == []
    assert sim.metrics.counter("failover.nonprimary_convictions").value == 1


def test_auto_takeover_on_partitioned_primary():
    sim, system, failover = build(fenced=True)
    failover.start()
    sim.spawn(system.submit({"k": 1}))
    sim.run(until=2.0)
    assert system.serving == "east"
    assert system.epoch == 1            # the incumbent regime holds a lease

    cut(system)
    sim.run(until=6.0)
    failover.stop()
    assert failover.detector.convicted("east")
    assert system.serving == "west"
    assert system.epoch == 2
    assert system.sites["west"].epoch == 2
    assert system.sites["west"].fenced_below == 2
    assert sim.metrics.counter("failover.auto_takeovers").value == 1
    assert sim.metrics.counter("logship.takeovers").value == 1
    # The primary was alive: in doubt, not lost.
    assert sim.metrics.counter("logship.lost_commits").value == 0


def test_fenced_takeover_bounces_the_deposed_tail():
    sim, system, failover = build(fenced=True)
    failover.start()
    sim.spawn(system.submit({"k": 1}))
    sim.run(until=2.0)
    cut(system)
    # A client that still believes in east gets its write acked there.
    sim.spawn(system.submit_to("east", {"k": "stale"}, txn_id="stale-1"))
    sim.run(until=6.0)
    assert system.serving == "west"

    system.network.heal()
    sim.run(until=14.0)                 # let the SHIP retry land and bounce
    failover.stop()
    assert sim.metrics.counter("logship.stale_epoch_rejected").value >= 1
    assert system.sites["east"].deposed
    assert "stale-1" not in system.sites["west"].applied_txns
    assert system.sites["west"].state.get("k") == 1
    # The post-heal heartbeat proves the conviction was a wrong guess.
    assert sim.metrics.counter("failover.false_convictions").value == 1


def test_unfenced_takeover_lets_the_resurrection_through():
    sim, system, failover = build(fenced=False)
    failover.start()
    sim.spawn(system.submit({"k": 1}))
    sim.run(until=2.0)
    cut(system)
    sim.spawn(system.submit_to("east", {"k": "stale"}, txn_id="stale-1"))
    sim.run(until=6.0)
    assert system.serving == "west"
    assert system.sites["west"].fenced_below == 0   # no protection taken

    system.network.heal()
    sim.run(until=14.0)
    failover.stop()
    # The deposed regime's tail ships straight in: the §5.1 hazard.
    assert "stale-1" in system.sites["west"].applied_txns
    assert system.sites["west"].state.get("k") == "stale"
    assert sim.metrics.counter("logship.stale_epoch_rejected").value == 0


def test_fenced_deposed_primary_rejects_new_commits():
    sim, system, failover = build(fenced=True)
    failover.start()
    sim.run(until=2.0)
    cut(system)
    # A stale write gives east an unshipped tail; after the heal its
    # SHIP attempt bounces off the fence, which is how east learns.
    sim.spawn(system.submit_to("east", {"k": "stale"}))
    sim.run(until=6.0)
    system.network.heal()
    sim.run(until=14.0)                 # the SHIP bounce fences east
    failover.stop()
    assert system.sites["east"].deposed
    with pytest.raises(StaleEpochError):
        sim.run_process(
            system.submit_to("east", {"k": "late"}), until=20.0
        )


def test_god_mode_fail_over_path_unchanged():
    system = LogShippingSystem(
        ShipMode.ASYNC, ship_interval=10.0, wan_latency=FixedLatency(0.01)
    )
    sim = system.sim
    for i in range(3):
        sim.spawn(system.submit({f"k{i}": i}))
    sim.run(until=1.0)
    result = system.fail_over()
    assert result["new_primary"] == "west"
    assert system.sites["east"].crashed
    # Nothing shipped (huge interval): the whole tail is lost, and the
    # historic metric names still carry the accounting.
    assert len(result["lost_txns"]) == 3
    assert sim.metrics.counter("logship.takeovers").value == 1
    assert sim.metrics.counter("logship.lost_commits").value == 3
    assert sim.metrics.counter("logship.in_doubt_commits").value == 0


def test_take_over_of_live_primary_counts_in_doubt_not_lost():
    system = LogShippingSystem(
        ShipMode.ASYNC, ship_interval=10.0, wan_latency=FixedLatency(0.01)
    )
    sim = system.sim
    for i in range(3):
        sim.spawn(system.submit({f"k{i}": i}))
    sim.run(until=1.0)
    result = system.take_over(fenced=True, cause="conviction")
    assert result["new_primary"] == "west"
    assert not system.sites["east"].crashed
    assert len(result["lost_txns"]) == 3
    assert sim.metrics.counter("logship.in_doubt_commits").value == 3
    assert sim.metrics.counter("logship.lost_commits").value == 0


def test_stack_is_deterministic():
    def run_once():
        sim, system, failover = build(fenced=True, seed=7)
        failover.start()
        sim.spawn(system.submit({"k": 1}))
        sim.run(until=2.0)
        cut(system)
        sim.run(until=6.0)
        system.network.heal()
        sim.run(until=14.0)
        failover.stop()
        return system.serving, system.epoch, sim.metrics.counters()

    assert run_once() == run_once()
