"""Arrival processes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, Timeout
from repro.workload import closed_loop, poisson_arrivals


def test_poisson_spawns_count_jobs():
    sim = Simulator(seed=1)
    done = []

    def job(i):
        yield Timeout(0.01)
        done.append(i)

    sim.spawn(poisson_arrivals(sim, rate=100.0, make_job=job, count=20))
    sim.run()
    assert sorted(done) == list(range(20))


def test_poisson_until_bound():
    sim = Simulator(seed=1)
    done = []

    def job(i):
        done.append(i)
        yield Timeout(0)

    sim.spawn(poisson_arrivals(sim, rate=10.0, make_job=job, until=1.0))
    sim.run()
    # ~10 expected in 1s at rate 10; loose statistical bound.
    assert 2 <= len(done) <= 25


def test_poisson_needs_a_bound():
    sim = Simulator()
    with pytest.raises(SimulationError):
        # Generator raises at first step.
        sim.run_process(poisson_arrivals(sim, 1.0, lambda i: iter(())))


def test_poisson_rate_validated():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run_process(poisson_arrivals(sim, 0.0, lambda i: iter(()), count=1))


def test_poisson_deterministic_under_seed():
    def run():
        sim = Simulator(seed=7)
        times = []

        def job(i):
            times.append(sim.now)
            yield Timeout(0)

        sim.spawn(poisson_arrivals(sim, rate=5.0, make_job=job, count=10))
        sim.run()
        return times

    assert run() == run()


def test_closed_loop_runs_all_jobs():
    sim = Simulator()
    done = []

    def job(worker, index):
        yield Timeout(1.0)
        done.append((worker, index))

    closed_loop(sim, workers=3, make_job=job, jobs_per_worker=4)
    sim.run()
    assert len(done) == 12
    assert sim.now == 4.0  # each worker serial, workers parallel


def test_closed_loop_think_time():
    sim = Simulator()

    def job(worker, index):
        yield Timeout(1.0)

    closed_loop(sim, workers=1, make_job=job, jobs_per_worker=3, think_time=0.5)
    sim.run()
    assert sim.now == pytest.approx(4.5)
