"""Domain generators."""

import random

from repro.workload import CheckStream, random_cart_sessions


def test_check_stream_sequential_numbers():
    stream = CheckStream(random.Random(1))
    checks = [stream.next_check() for _ in range(5)]
    assert [c.number for c in checks] == [1, 2, 3, 4, 5]
    assert len({c.uniquifier for c in checks}) == 5


def test_check_amounts_in_range():
    stream = CheckStream(random.Random(1), low=10.0, high=20.0)
    for _ in range(50):
        check = stream.next_check()
        assert 10.0 <= check.amount <= 20.0


def test_big_fraction_produces_big_checks():
    stream = CheckStream(random.Random(1), big_fraction=1.0, big_amount=15000.0)
    assert stream.next_check().amount == 15000.0


def test_cart_sessions_reproducible():
    a = random_cart_sessions(random.Random(3), 5)
    b = random_cart_sessions(random.Random(3), 5)
    assert [p.steps for p in a] == [p.steps for p in b]


def test_cart_sessions_only_known_kinds():
    plans = random_cart_sessions(random.Random(3), 20)
    for plan in plans:
        for kind, _item, _qty in plan.steps:
            assert kind in ("ADD", "CHANGE", "DELETE")


def test_cart_delete_only_after_add():
    plans = random_cart_sessions(random.Random(5), 30)
    for plan in plans:
        added = set()
        for kind, item, _qty in plan.steps:
            if kind == "ADD":
                added.add(item)
            elif kind == "DELETE":
                assert item in added
                added.discard(item)
