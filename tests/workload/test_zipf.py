"""Zipf key popularity and the open-loop GET/PUT driver."""

import pytest

from repro.dynamo import DynamoCluster
from repro.errors import SimulationError
from repro.sim import Simulator
from repro.workload import ZipfKeyGenerator, zipf_open_loop


def _gen(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    return ZipfKeyGenerator(sim.rng.stream("zipf"), **kwargs)


def test_bad_parameters_rejected():
    with pytest.raises(SimulationError):
        _gen(keyspace=0)
    with pytest.raises(SimulationError):
        _gen(theta=-0.1)


def test_rank_zero_is_hottest():
    gen = _gen(keyspace=1000, theta=0.99)
    counts = {}
    for _ in range(5000):
        rank = gen.rank()
        counts[rank] = counts.get(rank, 0) + 1
    assert max(counts, key=counts.get) == 0
    # Hot head: rank 0 alone takes a visibly outsized share.
    assert counts[0] > 5000 * 0.05


def test_theta_zero_is_uniform_support():
    gen = _gen(keyspace=50, theta=0.0)
    ranks = {gen.rank() for _ in range(3000)}
    assert len(ranks) == 50  # every rank reachable with equal weight


def test_key_names_are_a_bijection_of_ranks():
    gen = _gen(keyspace=512)
    names = {gen.key_for_rank(rank) for rank in range(512)}
    assert len(names) == 512


def test_same_seed_same_draws():
    a, b = _gen(seed=7, keyspace=10_000), _gen(seed=7, keyspace=10_000)
    assert [a.key() for _ in range(200)] == [b.key() for _ in range(200)]


def test_hot_keys_prefix():
    gen = _gen(keyspace=100, prefix="hot")
    hot = gen.hot_keys(5)
    assert len(hot) == 5
    assert hot[0] == gen.key_for_rank(0)
    assert all(k.startswith("hot") for k in hot)


def test_million_key_space_draws_cheaply():
    gen = _gen(keyspace=1_000_000)
    keys = {gen.key() for _ in range(1000)}
    assert len(keys) > 300  # skewed, but the tail is long


def test_open_loop_driver_counts_requests():
    sim = Simulator(seed=5)
    cluster = DynamoCluster(num_nodes=5, sim=sim)
    client = cluster.client("zipf")
    keys = ZipfKeyGenerator(sim.rng.stream("zipf"), keyspace=200)
    acked = []
    stats = {}
    sim.spawn(
        zipf_open_loop(
            sim, client, keys, rate=100.0, count=150,
            on_ack=lambda key, value: acked.append((key, value)),
            stats=stats,
        ),
        name="driver",
    )
    sim.run()
    assert stats["requests"] == 150
    total = (
        stats["gets"] + stats["puts"]
        + stats["failed_gets"] + stats["failed_puts"]
    )
    assert total == 150
    assert stats["failed_gets"] == 0 and stats["failed_puts"] == 0
    assert len(acked) == stats["puts"] > 0


def test_open_loop_driver_validation():
    sim = Simulator(seed=5)
    keys = ZipfKeyGenerator(sim.rng.stream("zipf"), keyspace=10)
    with pytest.raises(SimulationError):
        next(zipf_open_loop(sim, None, keys, rate=0.0, count=1))
    with pytest.raises(SimulationError):
        next(zipf_open_loop(sim, None, keys, rate=1.0))  # no count, no until
    with pytest.raises(SimulationError):
        next(zipf_open_loop(sim, None, keys, rate=1.0, count=1, get_fraction=1.5))


def test_open_loop_counts_failures_instead_of_raising():
    sim = Simulator(seed=6)
    cluster = DynamoCluster(num_nodes=5, sim=sim)
    client = cluster.client("zipf")
    keys = ZipfKeyGenerator(sim.rng.stream("zipf"), keyspace=50)
    for name in list(cluster.nodes):
        cluster.crash(name)
    stats = {}
    sim.spawn(
        zipf_open_loop(sim, client, keys, rate=100.0, count=40, stats=stats),
        name="driver",
    )
    sim.run()
    assert stats["requests"] == 40
    assert stats["failed_gets"] + stats["failed_puts"] == 40
