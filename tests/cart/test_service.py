"""Cart service over the Dynamo cluster, including partition anomalies."""

import pytest

from repro.cart import (
    CartService,
    LwwCartStrategy,
    MaterializedCartStrategy,
    OpCartStrategy,
)
from repro.dynamo import DynamoCluster


@pytest.fixture(params=["op", "materialized", "lww"])
def strategy(request):
    return {
        "op": OpCartStrategy(),
        "materialized": MaterializedCartStrategy(),
        "lww": LwwCartStrategy(),
    }[request.param]


def test_single_shopper_flow(strategy):
    cluster = DynamoCluster(seed=3)
    service = CartService(cluster, strategy)

    def shop():
        yield from service.add("cart:alice", "book", 2)
        yield from service.add("cart:alice", "pen")
        yield from service.change("cart:alice", "book", 1)
        yield from service.delete("cart:alice", "pen")
        cart = yield from service.view("cart:alice")
        return cart

    assert cluster.sim.run_process(shop()) == {"book": 1}


def test_two_sessions_sequential_share_cart(strategy):
    cluster = DynamoCluster(seed=3)
    phone = CartService(cluster, strategy)
    laptop = CartService(cluster, strategy)

    def shop():
        yield from phone.add("cart:alice", "book")
        yield from laptop.add("cart:alice", "pen")
        cart = yield from laptop.view("cart:alice")
        return cart

    assert cluster.sim.run_process(shop()) == {"book": 1, "pen": 1}


def concurrent_blind_sessions(strategy, seed=4):
    """Two clients write the same cart without seeing each other (blind
    contexts) — the sibling scenario."""
    cluster = DynamoCluster(seed=seed)
    first = CartService(cluster, strategy)
    second = CartService(cluster, strategy)

    def shop():
        # Both sessions read the (empty) cart, then write blind.
        op_a = yield from first.add("cart:x", "book")
        # Second client: simulate staleness by using a fresh client whose
        # GET raced the first PUT — emulate with direct blind put.
        result = yield from second.client.get("cart:x")
        del result
        yield from second.add("cart:x", "pen")
        cart = yield from first.view("cart:x")
        return cart

    return cluster, cluster.sim.run_process(shop())


def test_op_cart_survives_concurrency():
    _cluster, cart = concurrent_blind_sessions(OpCartStrategy())
    assert cart == {"book": 1, "pen": 1}


def test_view_empty_cart(strategy):
    cluster = DynamoCluster(seed=3)
    service = CartService(cluster, strategy)

    def shop():
        cart = yield from service.view("cart:nobody")
        return cart

    assert cluster.sim.run_process(shop()) == {}


def test_reconciliation_counter_ticks_on_siblings():
    cluster = DynamoCluster(seed=5)
    service = CartService(cluster, OpCartStrategy())
    alice = cluster.client("alice")
    bob = cluster.client("bob")

    def shop():
        # Manufacture true siblings with two blind writers.
        yield from alice.put("cart:x", [
            {"kind": "ADD", "item": "book", "quantity": 1, "uniquifier": "a", "time": 1.0}
        ])
        yield from bob.put("cart:x", [
            {"kind": "ADD", "item": "pen", "quantity": 1, "uniquifier": "b", "time": 1.0}
        ])
        cart = yield from service.view("cart:x")
        return cart

    cart = cluster.sim.run_process(shop())
    assert cart == {"book": 1, "pen": 1}
    assert cluster.sim.metrics.counter("cart.reconciliations").value >= 1
