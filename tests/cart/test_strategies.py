"""Merge semantics per strategy: who loses adds, who resurrects deletes."""

from repro.cart import (
    CartOp,
    LwwCartStrategy,
    MaterializedCartStrategy,
    OpCartStrategy,
)


def build(strategy, ops):
    blob = strategy.empty()
    for op in ops:
        blob = strategy.apply(blob, op)
    return blob


def divergent_siblings(strategy):
    """Base cart {book}; sibling A deletes book and adds pen; sibling B
    adds ink. A and B never saw each other."""
    base_ops = [CartOp("ADD", "book", 1, uniquifier="add-book", time=1.0)]
    base = build(strategy, base_ops)
    sibling_a = strategy.apply(
        strategy.apply(base, CartOp("DELETE", "book", uniquifier="del-book", time=2.0)),
        CartOp("ADD", "pen", 1, uniquifier="add-pen", time=3.0),
    )
    sibling_b = strategy.apply(
        base, CartOp("ADD", "ink", 1, uniquifier="add-ink", time=2.5)
    )
    return strategy.merge([sibling_a, sibling_b])


def test_op_cart_merge_loses_nothing_resurrects_nothing():
    strategy = OpCartStrategy()
    merged = divergent_siblings(strategy)
    assert strategy.view(merged) == {"pen": 1, "ink": 1}


def test_materialized_cart_keeps_adds_but_resurrects_delete():
    strategy = MaterializedCartStrategy()
    merged = divergent_siblings(strategy)
    view = strategy.view(merged)
    assert view.get("pen") == 1 and view.get("ink") == 1  # adds survive
    assert view.get("book") == 1  # the deleted book reappears (§6.4)


def test_lww_cart_loses_concurrent_adds():
    strategy = LwwCartStrategy()
    merged = divergent_siblings(strategy)
    view = strategy.view(merged)
    # Sibling A has the later stamp (t=3.0) and wins whole; B's ink is gone.
    assert view == {"pen": 1}


def test_op_cart_apply_dedups():
    strategy = OpCartStrategy()
    op = CartOp("ADD", "book", 1, uniquifier="u1", time=1.0)
    blob = strategy.apply(strategy.apply(strategy.empty(), op), op)
    assert strategy.view(blob) == {"book": 1}


def test_op_cart_merge_idempotent():
    strategy = OpCartStrategy()
    blob = build(strategy, [CartOp("ADD", "book", 1, uniquifier="u1", time=1.0)])
    merged = strategy.merge([blob, blob, blob])
    assert strategy.view(merged) == {"book": 1}


def test_op_cart_merge_commutative():
    strategy = OpCartStrategy()
    a = build(strategy, [CartOp("ADD", "book", 1, uniquifier="a", time=1.0)])
    b = build(strategy, [CartOp("ADD", "pen", 2, uniquifier="b", time=2.0)])
    assert strategy.view(strategy.merge([a, b])) == strategy.view(strategy.merge([b, a]))


def test_materialized_merge_takes_max_quantity():
    strategy = MaterializedCartStrategy()
    assert strategy.merge([{"book": 2}, {"book": 5}]) == {"book": 5}


def test_apply_does_not_mutate_input():
    for strategy in (OpCartStrategy(), MaterializedCartStrategy(), LwwCartStrategy()):
        blob = strategy.empty()
        before = repr(blob)
        strategy.apply(blob, CartOp("ADD", "book", 1, uniquifier="u", time=1.0))
        assert repr(blob) == before, strategy.name
