"""Cart ops and materialization."""

import pytest

from repro.cart import CartOp, materialize
from repro.errors import SimulationError


def test_bad_kind_rejected():
    with pytest.raises(SimulationError):
        CartOp("STEAL", "book")


def test_auto_uniquifier():
    a = CartOp("ADD", "book")
    b = CartOp("ADD", "book")
    assert a.uniquifier != b.uniquifier


def test_wire_roundtrip():
    op = CartOp("CHANGE", "book", 3, uniquifier="u1", time=2.5)
    assert CartOp.from_wire(op.to_wire()) == op


def test_materialize_add_accumulates():
    ops = [
        CartOp("ADD", "book", 1, uniquifier="a", time=1.0),
        CartOp("ADD", "book", 2, uniquifier="b", time=2.0),
    ]
    assert materialize(ops) == {"book": 3}


def test_materialize_change_overwrites():
    ops = [
        CartOp("ADD", "book", 5, uniquifier="a", time=1.0),
        CartOp("CHANGE", "book", 2, uniquifier="b", time=2.0),
    ]
    assert materialize(ops) == {"book": 2}


def test_materialize_delete_removes():
    ops = [
        CartOp("ADD", "book", 1, uniquifier="a", time=1.0),
        CartOp("DELETE", "book", uniquifier="b", time=2.0),
    ]
    assert materialize(ops) == {}


def test_materialize_order_independent_input():
    forward = [
        CartOp("ADD", "book", 1, uniquifier="a", time=1.0),
        CartOp("DELETE", "book", uniquifier="b", time=2.0),
        CartOp("ADD", "pen", 1, uniquifier="c", time=3.0),
    ]
    assert materialize(forward) == materialize(reversed(forward)) == {"pen": 1}


def test_materialize_add_after_delete_stays():
    ops = [
        CartOp("DELETE", "book", uniquifier="a", time=1.0),
        CartOp("ADD", "book", 1, uniquifier="b", time=2.0),
    ]
    assert materialize(ops) == {"book": 1}


def test_zero_quantity_change_drops_item():
    ops = [
        CartOp("ADD", "book", 1, uniquifier="a", time=1.0),
        CartOp("CHANGE", "book", 0, uniquifier="b", time=2.0),
    ]
    assert materialize(ops) == {}
