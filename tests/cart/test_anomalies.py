"""Cart anomaly accounting."""

from repro.cart import CartOp, compare_to_truth
from repro.cart.anomalies import aggregate


def ops_book_and_deleted_pen():
    return [
        CartOp("ADD", "book", 2, uniquifier="a", time=1.0),
        CartOp("ADD", "pen", 1, uniquifier="b", time=2.0),
        CartOp("DELETE", "pen", uniquifier="c", time=3.0),
    ]


def test_clean_observation():
    report = compare_to_truth({"book": 2}, ops_book_and_deleted_pen())
    assert report.clean
    assert report.lost_or_shorted == 0


def test_lost_item_detected():
    report = compare_to_truth({}, ops_book_and_deleted_pen())
    assert report.lost_items == ["book"]
    assert not report.clean


def test_shorted_item_detected():
    report = compare_to_truth({"book": 1}, ops_book_and_deleted_pen())
    assert report.shorted_items == ["book"]
    assert report.lost_items == []


def test_resurrected_item_detected():
    report = compare_to_truth({"book": 2, "pen": 1}, ops_book_and_deleted_pen())
    assert report.resurrected_items == ["pen"]
    assert report.lost_or_shorted == 0


def test_phantom_item_detected():
    """An item no operation ever mentioned is a phantom, not a
    resurrection."""
    report = compare_to_truth({"book": 2, "lamp": 1}, ops_book_and_deleted_pen())
    assert report.phantom_items == ["lamp"]
    assert report.resurrected_items == []


def test_over_quantity_is_not_an_anomaly_direction_we_count():
    """More copies than truth is neither lost nor resurrected; it only
    matters if the item itself should be absent."""
    report = compare_to_truth({"book": 5}, ops_book_and_deleted_pen())
    assert report.clean


def test_aggregate_totals():
    reports = [
        compare_to_truth({"book": 2}, ops_book_and_deleted_pen()),
        compare_to_truth({"book": 2, "pen": 1}, ops_book_and_deleted_pen()),
        compare_to_truth({}, ops_book_and_deleted_pen()),
    ]
    totals = aggregate(reports)
    assert totals == {
        "lost": 1, "shorted": 0, "resurrected": 1, "phantom": 0, "clean": 1,
    }
