"""Replica: submit/integrate, guesses, apologies on merge."""

import pytest

from repro.core import BusinessRule, Enforcement, Operation, Replica, RuleEngine
from repro.core.antientropy import sync_replicas
from repro.errors import RuleViolation
from tests.core.conftest import add_op


def cap_rule(cap):
    """Total must stay at or under cap."""

    def check(state, _op):
        if state.get("total", 0) > cap:
            return f"total {state.get('total', 0)} exceeds {cap}"
        return None

    return BusinessRule(name="cap", check=check, enforcement=Enforcement.LOCAL)


def make_replica(counter_registry, name="r1", cap=None):
    rules = RuleEngine([cap_rule(cap)]) if cap is not None else None
    return Replica(name, counter_registry, rules=rules)


def test_submit_applies_and_remembers(counter_registry):
    replica = make_replica(counter_registry)
    op = add_op(5)
    assert replica.submit(op)
    assert replica.state["total"] == 5
    assert replica.knows(op.uniquifier)


def test_submit_duplicate_is_noop(counter_registry):
    replica = make_replica(counter_registry)
    op = add_op(5, uniquifier="u1")
    assert replica.submit(op)
    assert not replica.submit(add_op(999, uniquifier="u1"))
    assert replica.state["total"] == 5


def test_submit_stamps_origin(counter_registry):
    replica = make_replica(counter_registry, name="west")
    op = add_op(1)
    replica.submit(op)
    assert op.origin == "west"


def test_submit_records_guess(counter_registry):
    replica = make_replica(counter_registry)
    op = add_op(1)
    replica.submit(op)
    assert replica.guesses.get(op.uniquifier) is not None


def test_local_rule_refuses_at_ingress(counter_registry):
    replica = make_replica(counter_registry, cap=10)
    replica.submit(add_op(8))
    with pytest.raises(RuleViolation):
        replica.submit(add_op(5))  # 13 > 10, visible locally


def test_integration_never_refuses_but_apologizes(counter_registry):
    """Two replicas each locally-legally accept 8; merged total 16 > 10.
    The violation surfaces as an apology, not a rejection (§5.6)."""
    a = make_replica(counter_registry, name="a", cap=10)
    b = make_replica(counter_registry, name="b", cap=10)
    a.submit(add_op(8))
    b.submit(add_op(8))
    apologies = sync_replicas(a, b)
    assert len(apologies) >= 1
    assert a.state["total"] == b.state["total"] == 16
    assert a.apologies.total + b.apologies.total == len(apologies)


def test_integrate_dedups(counter_registry):
    a = make_replica(counter_registry, name="a")
    op = add_op(5, uniquifier="u1")
    a.submit(op)
    a.integrate([add_op(999, uniquifier="u1")])
    assert a.state["total"] == 5


def test_sync_from_pulls_missing(counter_registry):
    a = make_replica(counter_registry, name="a")
    b = make_replica(counter_registry, name="b")
    a.submit(add_op(1))
    a.submit(add_op(2))
    assert b.sync_from(a) == 2
    assert b.state["total"] == 3


def test_rebuild_state(counter_registry):
    replica = make_replica(counter_registry)
    replica.submit(add_op(4))
    replica.state = {"total": 9999}  # simulated corruption
    assert replica.rebuild_state()["total"] == 4


def test_canonical_state_matches_for_commutative(counter_registry):
    a = make_replica(counter_registry, name="a")
    ops = [add_op(i, uniquifier=f"u{i}", ingress_time=float(i)) for i in range(4)]
    for op in ops:
        a.integrate([op])
    assert a.state == a.canonical_state()
