"""AdaptiveRiskPolicy: the threshold slides with the apology rate."""

import pytest

from repro.core import AdaptiveRiskPolicy, Enforcement, Operation


def op(amount):
    return Operation("CLEAR_CHECK", {"amount": amount})


def test_validation():
    with pytest.raises(ValueError):
        AdaptiveRiskPolicy(100.0, target_apology_rate=1.5)
    with pytest.raises(ValueError):
        AdaptiveRiskPolicy(100.0, adjustment_factor=1.0)


def test_behaves_like_threshold_policy_initially():
    policy = AdaptiveRiskPolicy(100.0)
    assert policy.enforcement_for(op(50)) is Enforcement.LOCAL
    assert policy.enforcement_for(op(100)) is Enforcement.COORDINATED


def test_hot_apology_rate_tightens_threshold():
    policy = AdaptiveRiskPolicy(
        100.0, target_apology_rate=0.05, adjustment_factor=2.0, window=10
    )
    for _ in range(10):
        policy.record_outcome(caused_apology=True)  # 100% rate: way hot
    assert policy.threshold == 50.0
    assert policy.adjustments == 1


def test_cold_apology_rate_relaxes_threshold():
    policy = AdaptiveRiskPolicy(
        100.0, target_apology_rate=0.5, adjustment_factor=2.0, window=10
    )
    for _ in range(10):
        policy.record_outcome(caused_apology=False)
    assert policy.threshold == 200.0


def test_on_target_rate_leaves_threshold_alone():
    policy = AdaptiveRiskPolicy(
        100.0, target_apology_rate=0.3, adjustment_factor=2.0, window=10
    )
    outcomes = [True, True, True] + [False] * 7  # 30% — exactly on target
    for outcome in outcomes:
        policy.record_outcome(outcome)
    assert policy.threshold == 100.0
    assert policy.adjustments == 0


def test_threshold_respects_bounds():
    policy = AdaptiveRiskPolicy(
        10.0, target_apology_rate=0.01, adjustment_factor=10.0, window=5,
        min_threshold=5.0, max_threshold=20.0,
    )
    for _ in range(5):
        policy.record_outcome(True)
    assert policy.threshold == 5.0
    for _ in range(3):
        for _ in range(5):
            policy.record_outcome(False)
    assert policy.threshold == 20.0


def test_window_resets_between_adjustments():
    policy = AdaptiveRiskPolicy(100.0, window=10)
    for _ in range(9):
        policy.record_outcome(False)
    assert policy.recent_count == 9
    policy.record_outcome(False)
    assert policy.recent_count == 0


def test_closed_loop_converges_toward_target():
    """Simulated world: P(apology | guess) grows with the threshold (more
    local guessing = more mess). The controller should settle near the
    threshold where the rate crosses the 2% target."""
    import random

    rng = random.Random(5)
    policy = AdaptiveRiskPolicy(
        1000.0, target_apology_rate=0.02, adjustment_factor=1.3, window=40,
        min_threshold=10.0, max_threshold=100_000.0,
    )
    def apology_probability(threshold):
        return min(0.5, threshold / 10_000.0)  # 2% at threshold 200

    for _ in range(80):
        for _ in range(40):
            policy.record_outcome(rng.random() < apology_probability(policy.threshold))
    assert 50.0 <= policy.threshold <= 800.0  # settled around the 2% point
