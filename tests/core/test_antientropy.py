"""Anti-entropy: convergence, schedules, disconnection."""

from repro.core import Replica
from repro.core.antientropy import GossipSchedule, converged, sync_all, sync_replicas
from repro.sim import Simulator
from tests.core.conftest import add_op


def make_replicas(counter_registry, n, clock=None):
    return [Replica(f"r{i}", counter_registry, clock=clock) for i in range(n)]


def test_sync_replicas_bidirectional(counter_registry):
    a, b = make_replicas(counter_registry, 2)
    a.submit(add_op(1))
    b.submit(add_op(2))
    sync_replicas(a, b)
    assert a.state["total"] == b.state["total"] == 3


def test_sync_all_converges_ring(counter_registry):
    replicas = make_replicas(counter_registry, 5)
    for i, replica in enumerate(replicas):
        replica.submit(add_op(i + 1))
    assert not converged(replicas)
    sync_all(replicas, rounds=len(replicas))
    assert converged(replicas)
    assert all(r.state["total"] == 15 for r in replicas)


def test_converged_empty_and_single(counter_registry):
    assert converged([])
    assert converged(make_replicas(counter_registry, 1))


def test_gossip_schedule_converges(counter_registry):
    sim = Simulator(seed=1)
    replicas = make_replicas(counter_registry, 4, clock=lambda: sim.now)
    for i, replica in enumerate(replicas):
        replica.submit(add_op(10 * (i + 1)))
    schedule = GossipSchedule(sim, replicas, period=1.0, until=10.0)
    schedule.install()
    sim.run()
    assert converged(replicas)
    assert all(r.state["total"] == 100 for r in replicas)
    assert schedule.syncs_done > 0


def test_gossip_respects_can_talk(counter_registry):
    """A replica cut off by can_talk never converges."""
    sim = Simulator(seed=1)
    replicas = make_replicas(counter_registry, 3, clock=lambda: sim.now)
    isolated = replicas[2]
    for i, replica in enumerate(replicas):
        replica.submit(add_op(i + 1))

    def can_talk(a, b):
        return isolated not in (a, b)

    schedule = GossipSchedule(sim, replicas, period=1.0, until=10.0, can_talk=can_talk)
    schedule.install()
    sim.run()
    assert replicas[0].state["total"] == 3  # 1 + 2, never sees replica 2's op
    assert isolated.state["total"] == 3  # its own op only
    assert schedule.syncs_blocked > 0


def test_gossip_after_heal_converges(counter_registry):
    """Disconnection ends at t=5; gossip finishes the job — eventually
    consistent (§7.6)."""
    sim = Simulator(seed=1)
    replicas = make_replicas(counter_registry, 3, clock=lambda: sim.now)
    isolated = replicas[2]
    for i, replica in enumerate(replicas):
        replica.submit(add_op(i + 1))

    def can_talk(a, b):
        if sim.now < 5.0:
            return isolated not in (a, b)
        return True

    schedule = GossipSchedule(sim, replicas, period=1.0, until=15.0, can_talk=can_talk)
    schedule.install()
    sim.run()
    assert converged(replicas)
    assert all(r.state["total"] == 6 for r in replicas)
