"""OfflineSession: the offlineable-client symmetry (§1)."""

from repro.core import (
    BusinessRule,
    Enforcement,
    OfflineSession,
    Operation,
    Replica,
    RuleEngine,
    TypeRegistry,
)


def make_home(cap=None):
    registry = TypeRegistry(initial_state=dict)
    registry.register(
        "ADD", lambda s, op: {**s, "total": s.get("total", 0) + op.args["amount"]}
    )
    rules = None
    if cap is not None:
        def check(state, _op):
            if state.get("total", 0) > cap:
                return f"total {state.get('total', 0)} > {cap}"
            return None

        rules = RuleEngine([BusinessRule("cap", check, Enforcement.LOCAL)])
    return Replica("home", registry, rules=rules)


def add(amount, uniq=None):
    return Operation("ADD", {"amount": amount}, uniquifier=uniq)


def test_connected_work_reaches_home_immediately():
    home = make_home()
    session = OfflineSession("laptop", home)
    session.perform(add(5))
    assert home.state["total"] == 5
    assert session.pending_for_home == 0


def test_session_starts_with_home_knowledge():
    home = make_home()
    home.submit(add(10))
    session = OfflineSession("laptop", home)
    assert session.state()["total"] == 10


def test_offline_work_queues_and_syncs_on_connect():
    home = make_home()
    session = OfflineSession("laptop", home)
    session.disconnect()
    session.perform(add(3))
    session.perform(add(4))
    assert home.state.get("total", 0) == 0
    assert session.pending_for_home == 2
    assert session.offline_ops == 2
    session.connect()
    assert home.state["total"] == 7
    assert session.pending_for_home == 0


def test_reconnect_pulls_home_side_changes_too():
    home = make_home()
    session = OfflineSession("laptop", home)
    session.disconnect()
    session.perform(add(3))
    home.submit(add(10))  # the world moved on without us
    session.connect()
    assert session.state()["total"] == 13
    assert home.state["total"] == 13


def test_duplicate_op_ignored_everywhere():
    home = make_home()
    session = OfflineSession("laptop", home)
    op = add(5, uniq="u1")
    assert session.perform(op)
    assert not session.perform(add(99, uniq="u1"))
    assert home.state["total"] == 5


def test_offline_guess_becomes_apology_on_connect():
    """Both the client and home independently stay under the cap; the
    merge busts it — detected at reconnection, answered with an apology."""
    home = make_home(cap=10)
    session = OfflineSession(
        "laptop", home,
        rules=RuleEngine([
            BusinessRule(
                "cap",
                lambda s, _op: "over" if s.get("total", 0) > 10 else None,
            )
        ]),
    )
    session.disconnect()
    session.perform(add(8))
    home.submit(add(8))
    apologies = session.connect()
    assert len(apologies) >= 1
    assert session.state()["total"] == home.state["total"] == 16
