"""Escrow locking: worst-case bounds, interleaving, READ barrier."""

import pytest

from repro.core import EscrowAccount, ExclusiveAccount
from repro.errors import EscrowOverflow, SimulationError
from repro.sim import Simulator, Timeout


def test_initial_out_of_bounds_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        EscrowAccount(sim, initial=-1.0, minimum=0.0)


def test_reserve_commit_applies_delta():
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0)

    def job():
        yield from account.reserve("t1", -30.0)
        account.commit("t1")
        return account.value

    assert sim.run_process(job()) == 70.0


def test_abort_is_inverse_operation():
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0)

    def job():
        yield from account.reserve("t1", -30.0)
        account.abort("t1")
        return account.value

    assert sim.run_process(job()) == 100.0
    assert account.operation_log == [("t1", -30.0)]


def test_concurrent_commutative_ops_interleave():
    """Two subtractions proceed without waiting — no serialization."""
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0)
    times = []

    def txn(tag, delta):
        yield from account.reserve(tag, delta)
        times.append((tag, sim.now))
        yield Timeout(1.0)  # think time while holding the reservation
        account.commit(tag)

    sim.spawn(txn("t1", -40.0))
    sim.spawn(txn("t2", -40.0))
    sim.run()
    assert times == [("t1", 0.0), ("t2", 0.0)]  # both granted immediately
    assert account.value == 20.0


def test_worst_case_blocks_risky_reserve():
    """80+80 pending subtractions from 100 would breach min=0: the second
    waits until the first settles."""
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0)
    grants = []

    def first():
        yield from account.reserve("t1", -80.0)
        grants.append(("t1", sim.now))
        yield Timeout(5.0)
        account.abort("t1")  # frees the headroom

    def second():
        yield from account.reserve("t2", -80.0)
        grants.append(("t2", sim.now))
        account.commit("t2")

    sim.spawn(first())
    sim.spawn(second())
    sim.run()
    assert grants == [("t1", 0.0), ("t2", 5.0)]
    assert account.value == 20.0


def test_try_reserve_nonblocking():
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0)
    assert account.try_reserve("t1", -80.0)
    assert not account.try_reserve("t2", -80.0)
    account.commit("t1")
    assert account.try_reserve("t2", -20.0)


def test_upper_bound_enforced():
    sim = Simulator()
    account = EscrowAccount(sim, initial=0.0, maximum=50.0)
    assert account.try_reserve("t1", 50.0)
    assert not account.try_reserve("t2", 1.0)


def test_worst_case_accounting():
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0)
    account.try_reserve("t1", -30.0)
    account.try_reserve("t2", 20.0)
    assert account.worst_case_low == 70.0
    assert account.worst_case_high == 120.0


def test_read_waits_for_pending_and_blocks_later_arrivals():
    """READ does not commute: it drains pending work and holds up later
    reservations (the 'annoying' §5.3 semantics)."""
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0)
    log = []

    def writer():
        yield from account.reserve("t1", -10.0)
        yield Timeout(5.0)
        account.commit("t1")

    def reader():
        yield Timeout(1.0)  # arrive while t1 pending
        value = yield from account.read()
        log.append(("read", value, sim.now))

    def late_writer():
        yield Timeout(2.0)  # arrives after the reader queued
        yield from account.reserve("t2", -10.0)
        log.append(("t2-granted", sim.now))
        account.commit("t2")

    sim.spawn(writer())
    sim.spawn(reader())
    sim.spawn(late_writer())
    sim.run()
    assert log == [("read", 90.0, 5.0), ("t2-granted", 5.0)]


def test_read_immediate_when_quiet():
    sim = Simulator()
    account = EscrowAccount(sim, initial=42.0)

    def job():
        value = yield from account.read()
        return (value, sim.now)

    assert sim.run_process(job()) == (42.0, 0.0)


def test_exclusive_account_serializes():
    sim = Simulator()
    account = ExclusiveAccount(sim, initial=100.0)
    grants = []

    def txn(tag):
        yield account.acquire()
        grants.append((tag, sim.now))
        account.add(-10.0)
        yield Timeout(1.0)
        account.release()

    sim.spawn(txn("t1"))
    sim.spawn(txn("t2"))
    sim.run()
    assert grants == [("t1", 0.0), ("t2", 1.0)]
    assert account.value == 80.0


def test_exclusive_account_bounds():
    sim = Simulator()
    account = ExclusiveAccount(sim, initial=5.0, minimum=0.0)

    def job():
        yield account.acquire()
        try:
            account.add(-10.0)
        except EscrowOverflow:
            return "blocked"
        finally:
            account.release()

    assert sim.run_process(job()) == "blocked"
