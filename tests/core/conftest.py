"""Shared fixtures: a counter op-space (commutative) and a register
op-space (last-writer-wins, NOT commutative) for contrast."""

import pytest

from repro.core import Operation, TypeRegistry


def _counter_add(state, op):
    new = dict(state)
    new["total"] = new.get("total", 0) + op.args["amount"]
    return new


def _register_set(state, op):
    new = dict(state)
    new["value"] = op.args["value"]
    return new


@pytest.fixture
def counter_registry():
    """Commutative: ADD amounts to a total."""
    registry = TypeRegistry(initial_state=dict)
    registry.register("ADD", _counter_add)
    return registry


@pytest.fixture
def register_registry():
    """Non-commutative: SET overwrites — WRITES do not commute (§5.3)."""
    registry = TypeRegistry(initial_state=dict)
    registry.register("SET", _register_set, declared_commutative=False)
    return registry


def add_op(amount, uniquifier=None, **kwargs):
    return Operation("ADD", {"amount": amount}, uniquifier=uniquifier, **kwargs)


def set_op(value, uniquifier=None, **kwargs):
    return Operation("SET", {"value": value}, uniquifier=uniquifier, **kwargs)
