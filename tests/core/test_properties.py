"""ACID 2.0 checker: commutative families pass; WRITE-like ones fail."""

from repro.core import check_acid2
from tests.core.conftest import add_op, set_op


def test_counter_ops_are_acid2(counter_registry):
    ops = [add_op(i, uniquifier=f"u{i}", ingress_time=float(i)) for i in range(4)]
    report = check_acid2(counter_registry, ops)
    assert report.ok
    assert report.failures == []


def test_register_sets_are_not_commutative(register_registry):
    ops = [
        set_op("a", uniquifier="u1", ingress_time=1.0),
        set_op("b", uniquifier="u2", ingress_time=2.0),
    ]
    report = check_acid2(register_registry, ops)
    assert not report.commutative
    assert not report.ok
    assert any("diverges" in failure for failure in report.failures)


def test_empty_sample_trivially_ok(counter_registry):
    assert check_acid2(counter_registry, []).ok


def test_single_op_ok(counter_registry):
    assert check_acid2(counter_registry, [add_op(5)]).ok


def test_idempotence_via_uniquifier_dedup(counter_registry):
    """ADD is not idempotent raw — applying twice doubles — but the
    uniquifier layer collapses duplicates, which is the paper's point."""
    ops = [add_op(5, uniquifier="u1", ingress_time=1.0)]
    report = check_acid2(counter_registry, ops)
    assert report.idempotent


def test_permutation_bound_respected(counter_registry):
    ops = [add_op(i, uniquifier=f"u{i}") for i in range(6)]
    # 6! = 720 permutations; bounded run must still terminate and pass.
    report = check_acid2(counter_registry, ops, max_permutations=10)
    assert report.ok
