"""Guess ledger and apology routing."""

from repro.core import Apology, ApologyQueue, GuessLedger


def make_apology(rule="overdraft", op="u1"):
    return Apology(rule=rule, op_uniquifier=op, detail="x", replica="r1", time=1.0)


def test_guess_lifecycle():
    ledger = GuessLedger()
    ledger.record("g1", basis="local view")
    assert not ledger.get("g1").settled
    ledger.confirm("g1")
    assert ledger.get("g1").outcome == "confirmed"
    ledger.record("g2", basis="local view")
    ledger.refute("g2")
    assert ledger.counts() == {"open": 0, "confirmed": 1, "wrong": 1}


def test_confirm_unknown_guess_is_noop():
    ledger = GuessLedger()
    ledger.confirm("ghost")
    ledger.refute("ghost")
    assert len(ledger) == 0


def test_apology_goes_to_human_without_handler():
    queue = ApologyQueue()
    queue.enqueue(make_apology())
    assert queue.human_interventions == 1
    assert queue.counts() == {"total": 1, "automated": 0, "human": 1}


def test_handler_absorbs_apology():
    queue = ApologyQueue()
    handled = []
    queue.register_handler("overdraft", lambda a: (handled.append(a), True)[1])
    queue.enqueue(make_apology())
    assert queue.human_interventions == 0
    assert len(handled) == 1
    assert queue.all[0].resolution == "automated"


def test_handler_can_escalate():
    """Apology code asks for human help for cases beyond its design (§5.7)."""
    queue = ApologyQueue()
    queue.register_handler("overdraft", lambda a: False)
    queue.enqueue(make_apology())
    assert queue.human_interventions == 1


def test_handler_scoped_by_rule():
    queue = ApologyQueue()
    queue.register_handler("overdraft", lambda a: True)
    queue.enqueue(make_apology(rule="overbooked"))
    assert queue.human_interventions == 1
