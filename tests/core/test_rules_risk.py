"""Business rules, enforcement modes, and risk policies."""

import pytest

from repro.core import (
    BusinessRule,
    Enforcement,
    Operation,
    RuleEngine,
    ThresholdRiskPolicy,
)
from repro.core.risk import always
from repro.errors import RuleViolation
from tests.core.conftest import add_op


def no_negative(state, _op):
    if state.get("total", 0) < 0:
        return "negative total"
    return None


def test_submit_check_raises_on_violation():
    engine = RuleEngine([BusinessRule("nonneg", no_negative)])
    with pytest.raises(RuleViolation):
        engine.check_submit({"total": -5}, add_op(-5))


def test_submit_check_passes_clean_state():
    engine = RuleEngine([BusinessRule("nonneg", no_negative)])
    engine.check_submit({"total": 5}, add_op(5))


def test_none_enforcement_never_blocks_submit():
    rule = BusinessRule("nonneg", no_negative, enforcement=Enforcement.NONE)
    engine = RuleEngine([rule])
    engine.check_submit({"total": -5}, add_op(-5))  # must not raise


def test_integrated_check_returns_violations():
    engine = RuleEngine([BusinessRule("nonneg", no_negative)])
    violations = engine.check_integrated({"total": -1}, add_op(-1))
    assert len(violations) == 1
    assert violations[0].rule == "nonneg"


def test_applies_to_filter():
    rule = BusinessRule(
        "nonneg", no_negative, applies_to=frozenset({"WITHDRAW"})
    )
    engine = RuleEngine([rule])
    engine.check_submit({"total": -5}, add_op(-5))  # ADD not covered
    with pytest.raises(RuleViolation):
        engine.check_submit({"total": -5}, Operation("WITHDRAW", {"amount": 5}))


def test_threshold_policy_is_the_10k_check():
    policy = ThresholdRiskPolicy(threshold=10_000)
    small = Operation("CLEAR_CHECK", {"amount": 100})
    big = Operation("CLEAR_CHECK", {"amount": 10_000})
    assert policy.enforcement_for(small) is Enforcement.LOCAL
    assert policy.enforcement_for(big) is Enforcement.COORDINATED
    assert policy.requires_coordination(big)
    assert not policy.requires_coordination(small)


def test_threshold_policy_custom_extractor():
    policy = ThresholdRiskPolicy(
        threshold=2, amount_of=lambda op: len(op.args.get("items", ()))
    )
    assert policy.requires_coordination(Operation("ORDER", {"items": [1, 2, 3]}))
    assert not policy.requires_coordination(Operation("ORDER", {"items": [1]}))


def test_threshold_policy_missing_amount_is_riskless():
    policy = ThresholdRiskPolicy(threshold=10)
    assert not policy.requires_coordination(Operation("PING", {}))


def test_always_policy():
    assert always(Enforcement.COORDINATED).requires_coordination(add_op(1))
    assert not always(Enforcement.LOCAL).requires_coordination(add_op(1))
