"""OpSet: dedup, merge-as-union, folds."""

from repro.core import OpSet
from tests.core.conftest import add_op, set_op


def test_add_dedups_by_uniquifier():
    ops = OpSet()
    assert ops.add(add_op(1, uniquifier="u1"))
    assert not ops.add(add_op(999, uniquifier="u1"))
    assert len(ops) == 1


def test_contains_op_or_uniquifier():
    ops = OpSet([add_op(1, uniquifier="u1")])
    assert "u1" in ops
    assert add_op(5, uniquifier="u1") in ops
    assert "u2" not in ops


def test_merge_returns_new_count():
    a = OpSet([add_op(1, uniquifier="u1"), add_op(2, uniquifier="u2")])
    b = OpSet([add_op(2, uniquifier="u2"), add_op(3, uniquifier="u3")])
    assert a.merge(b) == 1
    assert len(a) == 3


def test_union_is_commutative_in_knowledge():
    a = OpSet([add_op(1, uniquifier="u1")])
    b = OpSet([add_op(2, uniquifier="u2")])
    assert a.union(b).uniquifiers() == b.union(a).uniquifiers()


def test_missing_from():
    a = OpSet([add_op(1, uniquifier="u1"), add_op(2, uniquifier="u2")])
    b = OpSet([add_op(1, uniquifier="u1")])
    missing = a.missing_from(b)
    assert [op.uniquifier for op in missing] == ["u2"]


def test_fold_arrival_order(counter_registry):
    ops = OpSet([add_op(1), add_op(2), add_op(3)])
    assert ops.fold(counter_registry)["total"] == 6


def test_canonical_fold_same_knowledge_same_state(counter_registry):
    first = [add_op(i, uniquifier=f"u{i}", ingress_time=float(i)) for i in range(5)]
    shuffled = list(reversed(first))
    a = OpSet(first)
    b = OpSet(shuffled)
    assert a.canonical_fold(counter_registry) == b.canonical_fold(counter_registry)


def test_canonical_fold_fixes_noncommutative_divergence(register_registry):
    """SETs folded in arrival order diverge across replicas; the canonical
    order restores agreement — at the price of a deterministic tiebreak,
    not the price of coordination."""
    early = set_op("early", uniquifier="a", ingress_time=1.0)
    late = set_op("late", uniquifier="b", ingress_time=2.0)
    forward = OpSet([early, late])
    backward = OpSet([late, early])
    assert forward.fold(register_registry) != backward.fold(register_registry)
    assert (
        forward.canonical_fold(register_registry)
        == backward.canonical_fold(register_registry)
        == {"value": "late"}
    )


def test_canonical_order_sorts_by_time_then_uniquifier():
    a = add_op(1, uniquifier="b", ingress_time=1.0)
    b = add_op(2, uniquifier="a", ingress_time=1.0)
    c = add_op(3, uniquifier="z", ingress_time=0.5)
    ops = OpSet([a, b, c])
    assert [op.uniquifier for op in ops.canonical_order()] == ["z", "a", "b"]
