"""SyncOrApologize: the §5.8 choice, end to end."""

from repro.core import (
    BusinessRule,
    Enforcement,
    ExecutionMode,
    Operation,
    Replica,
    RuleEngine,
    SyncOrApologize,
    ThresholdRiskPolicy,
    TypeRegistry,
)
from repro.core.antientropy import sync_replicas


def make_space(cap=1000.0):
    registry = TypeRegistry(initial_state=dict)
    registry.register(
        "SPEND", lambda s, op: {**s, "spent": s.get("spent", 0) + op.args["amount"]}
    )

    def check(state, _op):
        if state.get("spent", 0) > cap:
            return f"spent {state.get('spent', 0)} > {cap}"
        return None

    rules = RuleEngine([BusinessRule("budget", check, Enforcement.LOCAL)])
    return registry, rules


def test_small_ops_guess_big_ops_coordinate():
    registry, rules = make_space()
    local = Replica("local", registry, rules=rules)
    remote = Replica("remote", registry, rules=rules)
    coordinations = []

    executor = SyncOrApologize(
        local,
        ThresholdRiskPolicy(500.0),
        coordinate=lambda: coordinations.append(sync_replicas(local, remote)),
    )
    assert executor.perform(Operation("SPEND", {"amount": 10.0})) is ExecutionMode.GUESS
    assert coordinations == []
    assert executor.perform(Operation("SPEND", {"amount": 600.0})) is ExecutionMode.SYNC
    assert len(coordinations) == 1
    assert executor.counts == {"sync": 1, "guess": 1, "refused": 0}
    assert executor.guess_fraction == 0.5


def test_coordinated_refusal_is_crisp():
    """The remote replica already spent 800; a coordinated 600 sees the
    truth and is refused; an identical local guess would have cleared."""
    registry, rules = make_space(cap=1000.0)
    local = Replica("local", registry, rules=rules)
    remote = Replica("remote", registry, rules=rules)
    remote.submit(Operation("SPEND", {"amount": 800.0}))

    executor = SyncOrApologize(
        local,
        ThresholdRiskPolicy(500.0),
        coordinate=lambda: sync_replicas(local, remote),
    )
    outcome = executor.perform(Operation("SPEND", {"amount": 600.0}))
    assert outcome is ExecutionMode.REFUSED
    assert local.state["spent"] == 800.0  # learned, did not add


def test_local_guess_can_be_wrong():
    """The same scenario below the threshold: the guess clears locally and
    the violation only surfaces when the replicas talk — an apology."""
    registry, rules = make_space(cap=1000.0)
    local = Replica("local", registry, rules=rules)
    remote = Replica("remote", registry, rules=rules)
    remote.submit(Operation("SPEND", {"amount": 800.0}))

    executor = SyncOrApologize(
        local,
        ThresholdRiskPolicy(10_000.0),  # nothing coordinates
        coordinate=lambda: None,
    )
    outcome = executor.perform(Operation("SPEND", {"amount": 600.0}))
    assert outcome is ExecutionMode.GUESS
    apologies = sync_replicas(local, remote)
    assert len(apologies) >= 1  # 1400 > 1000 discovered at reconciliation
