"""Operation identity and type registry."""

import pytest

from repro.core import Operation, TypeRegistry
from repro.errors import SimulationError
from tests.core.conftest import add_op


def test_equality_is_by_uniquifier():
    a = Operation("ADD", {"amount": 1}, uniquifier="u1")
    b = Operation("ADD", {"amount": 999}, uniquifier="u1")
    c = Operation("ADD", {"amount": 1}, uniquifier="u2")
    assert a == b
    assert a != c
    assert hash(a) == hash(b)


def test_auto_uniquifier_unique():
    ops = [Operation("ADD", {"amount": 1}) for _ in range(50)]
    assert len({op.uniquifier for op in ops}) == 50


def test_args_copied():
    args = {"amount": 1}
    op = Operation("ADD", args)
    args["amount"] = 2
    assert op.args["amount"] == 1


def test_registry_apply(counter_registry):
    state = counter_registry.initial_state()
    state = counter_registry.apply(state, add_op(5))
    state = counter_registry.apply(state, add_op(3))
    assert state["total"] == 8


def test_registry_duplicate_type_rejected(counter_registry):
    with pytest.raises(SimulationError):
        counter_registry.register("ADD", lambda s, o: s)


def test_registry_unknown_type_rejected(counter_registry):
    with pytest.raises(SimulationError):
        counter_registry.apply({}, Operation("NOPE", {}))


def test_registry_names(counter_registry):
    assert counter_registry.names() == ["ADD"]
