"""Property-based: CAP-cell accounting identities under arbitrary
schedules of increments, partitions, and heals."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cap import CapCell, Stance

events = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.sampled_from(["east", "west"]),
                  st.integers(1, 9)),
        st.tuples(st.just("cut"), st.just("east"), st.just(0)),
        st.tuples(st.just("heal"), st.just("east"), st.just(0)),
    ),
    max_size=40,
)


def drive(cell, schedule):
    clock = 0.0
    for index, (kind, site, amount) in enumerate(schedule):
        clock += 1.0
        if kind == "inc":
            cell.increment(site, float(amount), f"u{index}", at=clock)
        elif kind == "cut":
            cell.partition()
        else:
            cell.heal()
    cell.heal()


@given(events)
@settings(max_examples=80)
def test_ap_ops_never_loses_value(schedule):
    cell = CapCell(Stance.AP_OPS)
    drive(cell, schedule)
    assert cell.read("east") == cell.read("west") == cell.total_accepted_amount
    assert cell.lost_updates == []
    assert cell.consistent()


@given(events)
@settings(max_examples=80)
def test_cp_never_loses_and_never_diverges(schedule):
    cell = CapCell(Stance.CP)
    drive(cell, schedule)
    assert cell.read("east") == cell.total_accepted_amount
    assert cell.lost_updates == []
    assert cell.consistent()


@given(events)
@settings(max_examples=80)
def test_lww_conserves_or_loses_exactly_the_recorded_updates(schedule):
    """After healing, the LWW value equals accepted total minus the sum of
    the updates the merge recorded as lost — loss is real but accounted."""
    cell = CapCell(Stance.AP_LWW)
    amounts = {}
    clock = 0.0
    for index, (kind, site, amount) in enumerate(schedule):
        clock += 1.0
        if kind == "inc":
            if cell.increment(site, float(amount), f"u{index}", at=clock):
                amounts[f"u{index}"] = float(amount)
        elif kind == "cut":
            cell.partition()
        else:
            cell.heal()
    cell.heal()
    lost_value = sum(amounts.get(uniq, 0.0) for uniq in cell.lost_updates)
    assert cell.read("east") == cell.total_accepted_amount - lost_value
    assert cell.consistent()
