"""Property-based: vector clocks form a partial order with merge as LUB,
and sibling pruning keeps exactly the maximal frontier."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamo import VectorClock, VersionedValue
from repro.dynamo.versions import prune_dominated

clocks = st.dictionaries(
    keys=st.sampled_from(["n1", "n2", "n3"]),
    values=st.integers(min_value=0, max_value=5),
    max_size=3,
).map(VectorClock)


@given(clocks)
def test_descends_reflexive(a):
    assert a.descends(a)


@given(clocks, clocks)
def test_descends_antisymmetric(a, b):
    if a.descends(b) and b.descends(a):
        assert a == b


@given(clocks, clocks, clocks)
@settings(max_examples=60)
def test_descends_transitive(a, b, c):
    if a.descends(b) and b.descends(c):
        assert a.descends(c)


@given(clocks, clocks)
def test_merge_is_upper_bound(a, b):
    merged = a.merge(b)
    assert merged.descends(a)
    assert merged.descends(b)


@given(clocks, clocks, clocks)
@settings(max_examples=60)
def test_merge_is_least_upper_bound(a, b, c):
    if c.descends(a) and c.descends(b):
        assert c.descends(a.merge(b))


@given(clocks, clocks)
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(clocks)
def test_increment_strictly_descends(a):
    bumped = a.increment("n1")
    assert bumped.descends(a)
    assert not a.descends(bumped)


@given(st.lists(clocks, max_size=8))
@settings(max_examples=60)
def test_prune_keeps_only_maximal_frontier(clock_list):
    versions = [VersionedValue(i, clock) for i, clock in enumerate(clock_list)]
    frontier = prune_dominated(versions)
    # 1. Pairwise concurrent (no member dominates another).
    for x in frontier:
        for y in frontier:
            if x is not y:
                assert not x.clock.descends(y.clock) or not y.clock.descends(x.clock)
    # 2. Complete: every input is descended by some frontier member.
    for version in versions:
        assert any(kept.clock.descends(version.clock) for kept in frontier)
    # 3. Frontier clocks are distinct.
    assert len({kept.clock for kept in frontier}) == len(frontier)


@given(st.lists(clocks, max_size=6))
@settings(max_examples=40)
def test_prune_insensitive_to_input_order(clock_list):
    versions = [VersionedValue(i, clock) for i, clock in enumerate(clock_list)]
    forward = {v.clock for v in prune_dominated(versions)}
    backward = {v.clock for v in prune_dominated(list(reversed(versions)))}
    assert forward == backward
