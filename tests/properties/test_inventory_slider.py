"""Property-based: the over-booking slider is monotone — more θ never
books less — and duplicates collapse under any sync schedule."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import InventorySystem

scripts = st.lists(
    st.one_of(
        st.tuples(st.just("req"), st.sampled_from(["east", "west"]),
                  st.integers(1, 3)),
        st.tuples(st.just("sync"), st.just("east"), st.just(0)),
    ),
    max_size=40,
)


def run_script(theta, script):
    inv = InventorySystem(20.0, ["east", "west"], theta=theta)
    for index, (kind, where, quantity) in enumerate(script):
        if kind == "sync":
            inv.sync("east", "west")
        else:
            inv.request(where, f"r{index}", quantity=float(quantity))
    inv.sync_all()
    return inv


@given(scripts, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=60)
def test_slider_monotone_in_theta(script, theta_a, theta_b):
    low, high = sorted((theta_a, theta_b))
    inv_low = run_script(low, script)
    inv_high = run_script(high, script)
    assert inv_low.granted <= inv_high.granted
    assert inv_low.oversold() <= inv_high.oversold() + 1e-9


@given(scripts)
@settings(max_examples=60)
def test_total_reserved_never_exceeds_granted_quantity(script):
    inv = run_script(1.0, script)
    granted_quantity = sum(
        op.args["quantity"] for op in inv.global_ops()
    )
    assert inv.total_reserved() == granted_quantity


@given(scripts)
@settings(max_examples=60)
def test_duplicate_uniquifier_counts_once(script):
    """Replay the same script with every request id forced to collide:
    at most one reservation survives globally."""
    inv = InventorySystem(20.0, ["east", "west"], theta=1.0)
    for kind, where, quantity in script:
        if kind == "sync":
            inv.sync("east", "west")
        else:
            inv.request(where, "the-one-order", quantity=float(quantity))
    inv.sync_all()
    assert len(inv.global_ops()) <= 1
