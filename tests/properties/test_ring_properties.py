"""Property-based: the elastic ring's splice algebra.

Three truths, over arbitrary join/leave sequences:

1. Incremental splicing is exact — the spliced ring is indistinguishable
   from a ring built from scratch over the surviving node set.
2. ``moved_ranges`` is exact — a key's owner list changed across a
   reshape iff the key hashes into a reported arc; keys outside every
   arc keep their owners.
3. Ownership is a function of the node *set* — insertion order never
   matters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamo import HashRing, moved_ranges

POOL = [f"n{i}" for i in range(8)]

node_sets = st.lists(
    st.sampled_from(POOL), min_size=1, max_size=6, unique=True
)

# A join/leave script: each step picks a pool member; joining if absent,
# leaving if present (skipped when leaving would empty the ring).
scripts = st.lists(st.sampled_from(POOL), min_size=1, max_size=10)

sample_keys = [f"key-{i}" for i in range(80)]


def _apply(ring, script):
    """Run the join/leave script, returning the surviving node set."""
    members = set(ring.nodes)
    for name in script:
        if name in members:
            if len(members) == 1:
                continue
            ring.remove_node(name)
            members.remove(name)
        else:
            ring.add_node(name)
            members.add(name)
    return members


@given(node_sets, scripts)
@settings(max_examples=60)
def test_spliced_ring_matches_from_scratch(initial, script):
    ring = HashRing(initial, vnodes=4)
    members = _apply(ring, script)
    fresh = HashRing(sorted(members), vnodes=4)
    assert ring._positions == fresh._positions
    n = min(3, len(members))
    for key in sample_keys[:20]:
        assert ring.preference_list(key, n) == fresh.preference_list(key, n)


@given(node_sets, scripts)
@settings(max_examples=40)
def test_moved_ranges_exactly_the_ownership_changes(initial, script):
    before = HashRing(initial, vnodes=4)
    after = before.clone()
    members = _apply(after, script)
    n = min(3, len(set(initial)), len(members))
    moved = moved_ranges(before, after, n)
    for key in sample_keys:
        owners_changed = (
            before.preference_list(key, n) != after.preference_list(key, n)
        )
        in_arc = any(arc.contains_key(key) for arc in moved)
        assert owners_changed == in_arc, key


@given(node_sets, st.randoms(use_true_random=False))
@settings(max_examples=40)
def test_ownership_is_insertion_order_independent(nodes, rnd):
    shuffled = list(nodes)
    rnd.shuffle(shuffled)
    a = HashRing(nodes, vnodes=4)
    b = HashRing(shuffled, vnodes=4)
    n = min(3, len(nodes))
    for key in sample_keys[:30]:
        assert a.preference_list(key, n) == b.preference_list(key, n)


@given(node_sets, scripts)
@settings(max_examples=40)
def test_unchanged_keys_keep_all_owners(initial, script):
    """Stronger than owner(): the full top-n list is stable outside the
    moved arcs, so data on non-moved arcs never needs to transfer."""
    before = HashRing(initial, vnodes=4)
    after = before.clone()
    members = _apply(after, script)
    n = min(3, len(set(initial)), len(members))
    moved = moved_ranges(before, after, n)
    for key in sample_keys[:40]:
        if not any(arc.contains_key(key) for arc in moved):
            assert before.intended_owners(key, n) == after.intended_owners(key, n)
