"""Property-based: account folds are order-independent; statements put
every entry on exactly one statement under arbitrary close schedules;
θ=0 inventory never oversells under arbitrary demand/sync interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bank import ReplicatedBank, StatementBook, build_account_registry
from repro.bank.account import balance_of
from repro.core import Operation
from repro.resources import InventorySystem

account_ops = st.builds(
    lambda kind, amount, uniq: Operation(kind, {"amount": amount}, uniquifier=uniq),
    kind=st.sampled_from(["DEPOSIT", "CLEAR_CHECK", "FEE"]),
    amount=st.floats(min_value=0.01, max_value=500.0, allow_nan=False),
    uniq=st.uuids().map(str),
)


@given(st.lists(account_ops, max_size=10), st.randoms())
@settings(max_examples=60)
def test_account_fold_order_independent(ops, rng):
    registry = build_account_registry()

    def fold(sequence):
        state = registry.initial_state()
        for op in sequence:
            state = registry.apply(state, op)
        return state

    shuffled = list(ops)
    rng.shuffle(shuffled)
    forward = fold(ops)
    permuted = fold(shuffled)
    assert forward["entries"] == permuted["entries"]
    assert abs(forward["balance"] - permuted["balance"]) < 1e-6


@given(
    st.lists(
        st.tuples(st.sampled_from(["branch0", "branch1"]),
                  st.floats(min_value=1.0, max_value=100.0, allow_nan=False)),
        max_size=12,
    ),
    st.sets(st.integers(min_value=0, max_value=11)),
)
@settings(max_examples=40)
def test_statements_exactly_once_under_random_closes(events, close_points):
    """Clear checks at random branches, close a statement at random
    points, reconcile at the end, close once more: every entry appears on
    exactly one statement and the chain balances."""
    from repro.bank import Check

    bank = ReplicatedBank(num_replicas=2, initial_deposit=10_000.0)
    book = StatementBook(bank.replica("branch0"))
    for index, (branch, amount) in enumerate(events):
        bank.clear_check(branch, Check("fnb", "acct1", index + 1, "p", amount))
        if index in close_points:
            book.close(f"m{index}")
    bank.reconcile()
    book.close("final")
    book.check_exactly_once()
    assert book.chaining_consistent()


@given(
    st.lists(
        st.tuples(st.sampled_from(["east", "west", "SYNC"]),
                  st.integers(min_value=1, max_value=4)),
        max_size=40,
    )
)
@settings(max_examples=60)
def test_overprovisioning_never_oversells(script):
    """θ=0: under any interleaving of requests and syncs, the globally
    distinct reservations never exceed capacity."""
    inv = InventorySystem(20.0, ["east", "west"], theta=0.0)
    for index, (where, quantity) in enumerate(script):
        if where == "SYNC":
            inv.sync("east", "west")
        else:
            inv.request(where, f"r{index}", quantity=float(quantity))
        assert inv.oversold() == 0.0
