"""Property-based: log-shipping loss accounting is exact under arbitrary
commit/ship/fail-over schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logship import LogShippingSystem
from repro.sim import Timeout

events = st.lists(
    st.sampled_from(["commit", "ship", "failover"]),
    min_size=1,
    max_size=25,
)


@given(events)
@settings(max_examples=40, deadline=None)
def test_lost_equals_acked_minus_applied(schedule):
    """At every fail-over: lost == (acked at old primary) - (applied at
    the new one); and work that shipped is never in the lost set."""
    system = LogShippingSystem(ship_interval=1000.0, seed=2)  # manual shipping
    acked = []
    shipped_before_failover = set()

    def story():
        failovers = 0
        for index, kind in enumerate(schedule):
            if kind == "commit":
                txn = yield from system.submit({f"k{index}": index})
                acked.append(txn)
            elif kind == "ship":
                yield from system._ship_once()
                shipped_before_failover.update(system.backup.applied_txns)
            else:
                if failovers >= 2:
                    continue  # keep the scenario simple: at most 2 swaps
                old_committed = set(system.primary.committed_local)
                new_applied = set(system.backup.applied_txns)
                result = system.fail_over()
                expected = sorted(old_committed - new_applied)
                assert result["lost_txns"] == expected
                for txn in shipped_before_failover:
                    assert txn not in result["lost_txns"]
                failovers += 1
                system.recover_orphans(policy="discard")
            yield Timeout(0.001)

    system.sim.run_process(story())


@given(events)
@settings(max_examples=30, deadline=None)
def test_sync_mode_never_loses_under_any_schedule(schedule):
    from repro.logship import ShipMode

    system = LogShippingSystem(mode=ShipMode.SYNC, seed=2)

    def story():
        failovers = 0
        for index, kind in enumerate(schedule):
            if kind == "commit":
                yield from system.submit({f"k{index}": index})
            elif kind == "failover" and failovers < 2:
                result = system.fail_over()
                assert result["lost_txns"] == []
                failovers += 1
                system.recover_orphans(policy="discard")
            yield Timeout(0.001)

    system.sim.run_process(story())
