"""Property-based: the workflow is effectively exactly-once under any
schedule of submissions, retries, and knowledge exchanges."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workflow import WorkItem, WorkflowSystem


def build_system():
    def handle_order(item):
        return "accepted", [item.child("ship")]

    def handle_ship(item):
        return "shipped", []

    return WorkflowSystem(["east", "west"], {
        "order": handle_order, "ship": handle_ship,
    })


events = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(0, 9), st.sampled_from(["east", "west"])),
        st.tuples(st.just("retry"), st.integers(0, 9), st.sampled_from(["east", "west"])),
        st.tuples(st.just("sync"), st.just(0), st.just("east")),
    ),
    max_size=40,
)


@given(events)
@settings(max_examples=80)
def test_exactly_once_under_any_schedule(schedule):
    system = build_system()
    submitted = set()
    for kind, order_id, replica in schedule:
        if kind == "sync":
            system.sync_all()
            continue
        po = WorkItem(f"po-{order_id}", "order", {})
        if kind == "submit" or order_id in submitted:
            system.submit(replica, po)
            submitted.add(order_id)
        # 'retry' of a never-submitted order is meaningless; skip.
    system.sync_all()
    assert system.effective_exactly_once()
    # Every submitted order has exactly its chain: order + ship.
    assert system.logical_executions() == 2 * len(submitted)
    # Physical never below logical; waste only from duplicates.
    assert system.physical_executions() >= system.logical_executions()


@given(events)
@settings(max_examples=50)
def test_sync_never_loses_records(schedule):
    system = build_system()
    for kind, order_id, replica in schedule:
        if kind == "sync":
            before = {
                name: set(node.records)
                for name, node in system.replicas.items()
            }
            system.sync_all()
            for name, node in system.replicas.items():
                assert before[name] <= set(node.records)
        else:
            system.submit(replica, WorkItem(f"po-{order_id}", "order", {}))
