"""Property-based: site-aware routing picks the right latency model,
WAN links are symmetric unless configured otherwise, unknown sites are
errors, and a single-site topology is bit-identical to the flat fabric.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.net import (
    FixedLatency,
    LinkConfig,
    Message,
    Network,
    Site,
    Topology,
    TopologyNetwork,
    WanLink,
)
from repro.sim import Simulator

import pytest


def two_site_net(seed=0, lan=0.001, wan=0.5, bandwidth=None):
    sim = Simulator(seed=seed)
    topology = Topology(
        [Site("a", lan=FixedLatency(lan)), Site("b", lan=FixedLatency(lan))],
        default_wan=WanLink(FixedLatency(wan), bandwidth=bandwidth),
    )
    net = TopologyNetwork(
        sim, topology, default_link=LinkConfig(latency=FixedLatency(lan))
    )
    return sim, topology, net


def deliver_one(sim, net, src, dst):
    """Send one message and return its transit time."""
    start = sim.now
    net.send(Message(src, dst, "ping"))
    sim.run()
    return sim.now - start


@given(
    lan=st.floats(min_value=1e-4, max_value=0.01),
    wan=st.floats(min_value=0.1, max_value=2.0),
)
@settings(max_examples=40, deadline=None)
def test_intra_site_uses_lan_cross_site_uses_wan(lan, wan):
    sim, topology, net = two_site_net(lan=lan, wan=wan)
    for name in ("a1", "a2", "b1"):
        net.attach(name)
    topology.place_all(("a1", "a2"), "a")
    topology.place("b1", "b")
    assert deliver_one(sim, net, "a1", "a2") == pytest.approx(lan)
    assert deliver_one(sim, net, "a1", "b1") == pytest.approx(wan)
    assert deliver_one(sim, net, "b1", "a1") == pytest.approx(wan)


@given(
    forward=st.floats(min_value=0.1, max_value=1.0),
    backward=st.floats(min_value=0.1, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_wan_symmetric_by_default_asymmetric_when_configured(forward, backward):
    sim, topology, net = two_site_net()
    net.attach("a1"), net.attach("b1")
    topology.place("a1", "a")
    topology.place("b1", "b")

    topology.set_wan("a", "b", WanLink(FixedLatency(forward)))
    assert deliver_one(sim, net, "a1", "b1") == pytest.approx(forward)
    # Symmetric by default.
    assert deliver_one(sim, net, "b1", "a1") == pytest.approx(forward)

    topology.set_wan("b", "a", WanLink(FixedLatency(backward)), symmetric=False)
    assert deliver_one(sim, net, "a1", "b1") == pytest.approx(forward)
    assert deliver_one(sim, net, "b1", "a1") == pytest.approx(backward)


def test_unknown_site_names_raise():
    _sim, topology, _net = two_site_net()
    with pytest.raises(SimulationError):
        topology.place("x", "nowhere")
    with pytest.raises(SimulationError):
        topology.set_wan("a", "nowhere", WanLink(FixedLatency(1.0)))
    with pytest.raises(SimulationError):
        topology.wan("nowhere", "b")
    with pytest.raises(SimulationError):
        topology.members("nowhere")
    # A SiteFault naming an unknown site is rejected too.
    from repro.net import SiteFault

    with pytest.raises(SimulationError):
        SiteFault(loss_probability=1.0, topology=topology, src_site="nowhere")


@given(
    seed=st.integers(min_value=0, max_value=1000),
    sends=st.lists(
        st.tuples(
            st.sampled_from(["p1", "p2", "p3"]),
            st.sampled_from(["p1", "p2", "p3"]),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=30, deadline=None)
def test_single_site_topology_bit_identical_to_flat_network(seed, sends):
    """One site with no LAN override must fall through to the flat link
    config, drawing the *same* RNG samples in the same order: identical
    delivery schedule, identical trace, identical counters."""

    def run(make_net):
        sim = Simulator(seed=seed)
        net = make_net(sim)
        for name in ("p1", "p2", "p3"):
            net.attach(name)
        for src, dst, at in sends:
            sim.schedule_at(at, net.send, Message(src, dst, "ping"))
        sim.run()
        trace = "\n".join(repr(r) for r in sim.trace.records)
        return sim.now, trace, sim.metrics.counters()

    link = LinkConfig(
        latency=FixedLatency(0.01), loss_probability=0.1,
        duplicate_probability=0.1,
    )

    def flat(sim):
        return Network(sim, default_link=link)

    def single_site(sim):
        topology = Topology([Site("solo")])  # lan=None: flat fall-through
        net = TopologyNetwork(sim, topology, default_link=link)
        topology.place_all(("p1", "p2", "p3"), "solo")
        return net

    flat_result = run(flat)
    topo_result = run(single_site)
    assert flat_result == topo_result


def test_wan_bandwidth_queues_fifo():
    """A bandwidth-capped pipe serializes cross-site sends: the k-th
    message queues behind k-1 transmissions."""
    sim, topology, net = two_site_net(wan=0.5, bandwidth=10.0)
    net.attach("a1"), net.attach("b1")
    topology.place("a1", "a")
    topology.place("b1", "b")
    box = net._mailboxes["b1"]
    for _ in range(5):
        net.send(Message("a1", "b1", "ping"))
    sim.run()
    # transmit = 1/10 s each; message k departs after k transmissions.
    assert sim.now == pytest.approx(0.5 + 5 * 0.1)
    assert len(box) == 5
    assert sim.metrics.counter("net.wan_msgs").value == 5
