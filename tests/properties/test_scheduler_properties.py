"""Property-based contracts for the kernel's scheduling order and clock.

These pin the invariants the fast-lane/batched-drain kernel must keep:
global (time, seq) execution order regardless of which internal structure
(heap or zero-delay lane) an entry rides, and the documented ``run``
clock semantics for every combination of ``until`` and ``max_steps``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator

# Delays on a coarse grid so ties are common — ties are where the
# lane/heap ordering contract actually bites.
_delays = st.floats(min_value=0.0, max_value=5.0, allow_nan=False).map(
    lambda d: round(d * 4) / 4
)


@given(st.lists(_delays, max_size=40))
@settings(max_examples=80)
def test_execution_is_total_time_seq_order(delays):
    """Entries run in (time, insertion-seq) order, even when zero delays
    (the lane) interleave with positive delays (the heap)."""
    sim = Simulator()
    executed = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, executed.append, (delay, index))
    sim.run()
    assert executed == sorted((d, i) for i, d in enumerate(delays))


@given(st.lists(st.integers(0, 99), min_size=1, max_size=30))
@settings(max_examples=50)
def test_zero_delay_cascade_is_fifo(tags):
    """A callback scheduling zero-delay work sees it run FIFO, after all
    previously scheduled same-time work."""
    sim = Simulator()
    order = []

    def tick():
        order.append("tick")
        for tag in tags:
            sim.schedule(0.0, order.append, tag)

    sim.schedule(1.0, tick)
    sim.schedule(1.0, order.append, "tie")
    sim.run()
    assert order == ["tick", "tie"] + list(tags)
    assert sim.now == 1.0


@given(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
)
@settings(max_examples=50)
def test_schedule_at_past_raises(advance, backstep):
    sim = Simulator()
    sim.schedule(advance, lambda: None)
    sim.run()
    assert sim.now == advance
    with pytest.raises(SimulationError):
        sim.schedule_at(sim.now - backstep, lambda: None)


@given(
    st.lists(_delays, max_size=30),
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
@settings(max_examples=60)
def test_run_until_never_exceeds_until(delays, until):
    """No callback observes now > until, and the clock lands exactly on
    until when the run bound (not exhaustion beyond it) is what stopped
    execution."""
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run(until=until)
    assert all(t <= until for t in observed)
    assert sim.now == until
    assert len(observed) == sum(1 for d in delays if d <= until)


@given(
    st.lists(_delays, min_size=1, max_size=30),
    st.integers(min_value=0, max_value=35),
)
@settings(max_examples=60)
def test_max_steps_is_a_pure_prefix(delays, max_steps):
    """Running with max_steps executes exactly the first min(n, max_steps)
    callbacks of the full (time, seq) order, and a follow-up run finishes
    the rest in order — interruption never reorders."""
    sim = Simulator()
    executed = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, executed.append, (delay, index))
    full_order = sorted((d, i) for i, d in enumerate(delays))
    sim.run(max_steps=max_steps)
    assert executed == full_order[:max_steps]
    sim.run()
    assert executed == full_order
