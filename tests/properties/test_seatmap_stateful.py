"""Stateful hypothesis test: the §7.3 seat invariant holds under any
interleaving of holds, purchases, releases, and clock advances."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.resources import SeatMap, SeatState
from repro.sim import Simulator

SEATS = ["s0", "s1", "s2"]
SESSIONS = ["alice", "bob", "eve"]


class SeatMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.seats = SeatMap(self.sim, SEATS, pending_timeout=60.0)
        self.model_purchased = set()

    @rule(seat=st.sampled_from(SEATS), session=st.sampled_from(SESSIONS))
    def hold(self, seat, session):
        was_available = self.seats.state_of(seat) is SeatState.AVAILABLE
        result = self.seats.hold(seat, session)
        assert result == was_available

    @rule(seat=st.sampled_from(SEATS), session=st.sampled_from(SESSIONS))
    def purchase(self, seat, session):
        could = (
            self.seats.state_of(seat) is SeatState.PENDING
            and self.seats.seats[seat].session == session
        )
        result = self.seats.purchase(seat, session, session)
        assert result == could
        if result:
            self.model_purchased.add(seat)

    @rule(seat=st.sampled_from(SEATS), session=st.sampled_from(SESSIONS))
    def release(self, seat, session):
        self.seats.release(seat, session)

    @rule(dt=st.floats(min_value=0.1, max_value=100.0))
    def advance_time(self, dt):
        self.sim.run(until=self.sim.now + dt)

    @invariant()
    def seat_invariant_holds(self):
        self.seats.check_invariant()

    @invariant()
    def purchases_are_permanent(self):
        """A purchased seat never reverts — not even via timeout."""
        for seat in self.model_purchased:
            assert self.seats.state_of(seat) is SeatState.PURCHASED

    @invariant()
    def no_pending_survives_past_its_window(self):
        """After a long-enough quiet advance, nothing is stuck pending.
        (Checked opportunistically: if the heap is drained and time has
        moved past every scheduled expiry, pendings must be gone.)"""
        if self.sim.pending_count == 0:
            for seat_id in SEATS:
                assert self.seats.state_of(seat_id) is not SeatState.PENDING or (
                    self.seats.pending_timeout is None
                )


TestSeatMachine = SeatMachine.TestCase
TestSeatMachine.settings = settings(max_examples=30, stateful_step_count=30, deadline=None)
