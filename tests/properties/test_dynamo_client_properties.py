"""Property-based at the Dynamo client: context-carrying writers never
create siblings; blind writers create at most one sibling each."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamo import DynamoCluster


@given(st.lists(st.integers(0, 100), min_size=1, max_size=8))
@settings(max_examples=25, deadline=None)
def test_single_writer_with_context_never_forks(values):
    cluster = DynamoCluster(seed=5)
    client = cluster.client()

    def run():
        context = None
        for value in values:
            context = yield from client.put("k", value, context=context)
            result = yield from client.get("k")
            context = result.context
        final = yield from client.get("k")
        return final

    result = cluster.sim.run_process(run())
    assert not result.conflicted
    assert result.values == [values[-1]]


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=15, deadline=None)
def test_n_blind_writers_at_most_n_siblings(writer_count):
    cluster = DynamoCluster(seed=7)
    clients = [cluster.client(f"w{i}") for i in range(writer_count)]

    def run():
        for index, client in enumerate(clients):
            yield from client.put("k", f"v{index}")  # all blind
        reader = clients[0]
        result = yield from reader.get("k")
        return result

    result = cluster.sim.run_process(run())
    assert 1 <= len(result.siblings) <= writer_count
    # The merged context covers every sibling.
    for sibling in result.siblings:
        assert result.context.descends(sibling.clock)


@given(st.integers(min_value=2, max_value=5))
@settings(max_examples=15, deadline=None)
def test_reconciling_put_always_collapses(writer_count):
    cluster = DynamoCluster(seed=9)
    clients = [cluster.client(f"w{i}") for i in range(writer_count)]

    def run():
        for index, client in enumerate(clients):
            yield from client.put("k", f"v{index}")
        reader = clients[0]
        conflicted = yield from reader.get("k")
        yield from reader.put("k", "merged", context=conflicted.context)
        final = yield from reader.get("k")
        return final

    result = cluster.sim.run_process(run())
    assert result.values == ["merged"]
