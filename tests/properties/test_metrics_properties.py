"""Property tests for the measurement primitives.

Histogram.percentile is checked against the standard library's
``statistics.quantiles`` (the linear-interpolation "inclusive" method is
the same estimator), and TimeSeries.time_weighted_mean against a
brute-force integral of the step function.
"""

import math
import statistics

from hypothesis import given, strategies as st

from repro.sim.metrics import Histogram, TimeSeries

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Histogram.percentile


@given(st.lists(finite_floats, min_size=2, max_size=200))
def test_quartiles_match_statistics_quantiles(values):
    histogram = Histogram("h")
    for value in values:
        histogram.observe(value)
    q1, median, q3 = statistics.quantiles(values, n=4, method="inclusive")
    assert math.isclose(histogram.percentile(25), q1, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(histogram.percentile(50), median, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(histogram.percentile(75), q3, rel_tol=1e-9, abs_tol=1e-6)


@given(st.lists(finite_floats, min_size=2, max_size=100))
def test_percentile_grid_matches_statistics_quantiles(values):
    histogram = Histogram("h")
    for value in values:
        histogram.observe(value)
    # quantiles(n=100, inclusive) gives the 1..99th percentiles.
    expected = statistics.quantiles(values, n=100, method="inclusive")
    for q, want in zip(range(1, 100), expected):
        assert math.isclose(
            histogram.percentile(q), want, rel_tol=1e-9, abs_tol=1e-6
        )


@given(st.lists(finite_floats, min_size=1, max_size=100),
       st.floats(min_value=0.0, max_value=100.0))
def test_percentile_is_bounded_and_monotone(values, q):
    histogram = Histogram("h")
    for value in values:
        histogram.observe(value)
    result = histogram.percentile(q)
    assert min(values) <= result <= max(values)
    assert histogram.percentile(0) == min(values)
    assert histogram.percentile(100) == max(values)
    if q <= 50:
        assert result <= histogram.percentile(50) or math.isclose(
            result, histogram.percentile(50)
        )


def test_percentile_empty_is_nan():
    assert math.isnan(Histogram("h").percentile(50))


# ----------------------------------------------------------------------
# TimeSeries.time_weighted_mean


def brute_force_step_mean(samples, end_time, steps=20000):
    """Evaluate the step function on a fine grid and average it."""
    start = samples[0][0]
    if end_time <= start:
        return samples[0][1]
    total = 0.0
    for i in range(steps):
        t = start + (end_time - start) * (i + 0.5) / steps
        value = samples[0][1]
        for time, sample_value in samples:
            if time <= t:
                value = sample_value
            else:
                break
        total += value
    return total / steps


@st.composite
def sample_paths(draw):
    # Quantize times to a 1e-6 grid: sub-ulp spans (e.g. 0.0 vs 5e-324)
    # make area/span round through denormals, which is noise about float
    # arithmetic, not about the step-function integral under test.
    times = sorted(draw(st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False)
        .map(lambda t: round(t, 6)),
        min_size=2, max_size=20, unique=True,
    )))
    values = draw(st.lists(
        st.floats(min_value=-100.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=len(times), max_size=len(times),
    ))
    tail = draw(st.floats(min_value=0.0, max_value=50.0,
                          allow_nan=False, allow_infinity=False))
    return list(zip(times, values)), times[-1] + tail


@given(sample_paths())
def test_time_weighted_mean_matches_step_integral(path):
    samples, end_time = path
    series = TimeSeries("s")
    for time, value in samples:
        series.record(time, value)
    got = series.time_weighted_mean(end_time)
    want = brute_force_step_mean(samples, end_time)
    # the grid estimate carries O(1/steps) error on each step edge
    scale = max(1.0, max(abs(v) for _t, v in samples))
    assert math.isclose(got, want, rel_tol=0.05, abs_tol=0.05 * scale)


@given(sample_paths(), st.floats(min_value=-50.0, max_value=50.0,
                                 allow_nan=False, allow_infinity=False))
def test_constant_series_mean_is_the_constant(path, constant):
    samples, end_time = path
    series = TimeSeries("s")
    for time, _value in samples:
        series.record(time, constant)
    assert math.isclose(series.time_weighted_mean(end_time), constant,
                        rel_tol=1e-9, abs_tol=1e-9)


@given(sample_paths())
def test_mean_lies_within_value_range(path):
    samples, end_time = path
    series = TimeSeries("s")
    for time, value in samples:
        series.record(time, value)
    values = [value for _time, value in samples]
    mean = series.time_weighted_mean(end_time)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


def test_time_weighted_mean_empty_is_nan():
    assert math.isnan(TimeSeries("s").time_weighted_mean())
