"""Property-based: group commit never strands a rider and conserves work."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, Timeout
from repro.storage import Disk
from repro.tandem import GroupCommitter

arrival_plans = st.lists(
    st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
    min_size=1,
    max_size=30,
)


@given(arrival_plans, st.sampled_from([None, 0.0, 0.002, 0.01]))
@settings(max_examples=60, deadline=None)
def test_every_commit_completes(gaps, timer):
    sim = Simulator(seed=1)
    committer = GroupCommitter(sim, Disk(sim, service_time=0.005), timer=timer)
    done = []

    def arrivals():
        for index, gap in enumerate(gaps):
            yield Timeout(gap)
            sim.spawn(_commit(index))

    def _commit(index):
        latency = yield from committer.commit()
        done.append((index, latency))

    sim.spawn(arrivals())
    sim.run()
    assert sorted(i for i, _l in done) == list(range(len(gaps)))
    assert all(latency >= 0 for _i, latency in done)


@given(arrival_plans)
@settings(max_examples=40, deadline=None)
def test_riders_conserved(gaps):
    """Total riders across all busses equals total commits."""
    sim = Simulator(seed=1)
    committer = GroupCommitter(sim, Disk(sim, service_time=0.005), timer=0.002)

    def arrivals():
        for gap in gaps:
            yield Timeout(gap)
            sim.spawn(committer.commit())

    sim.spawn(arrivals())
    sim.run()
    riders = sim.metrics.counter("groupcommit.riders").value
    assert riders == len(gaps)
    busses = sim.metrics.counter("groupcommit.busses").value
    assert 1 <= busses <= len(gaps)


@given(arrival_plans)
@settings(max_examples=40, deadline=None)
def test_batching_never_does_more_disk_writes_than_car(gaps):
    def run(timer):
        sim = Simulator(seed=1)
        disk = Disk(sim, service_time=0.005)
        committer = GroupCommitter(sim, disk, timer=timer)

        def arrivals():
            for gap in gaps:
                yield Timeout(gap)
                sim.spawn(committer.commit())

        sim.spawn(arrivals())
        sim.run()
        return sim.metrics.counter(f"disk.{disk.name}.writes").value

    assert run(0.002) <= run(None)
