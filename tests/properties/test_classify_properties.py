"""Property-based: the op-class mapping is total, binary, and depends
only on the measured booleans — never on dict insertion order or on the
order the sample workload was collected in.

``repro.txn`` routes every operation through this classification (weak →
immediate guess, strong → total order), so an order-dependent answer
here would make replica behavior depend on who sampled first.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.classify import (
    OP_STRONG,
    OP_WEAK,
    OperationProfile,
    classify_operation_space,
)
from repro.txn import ResourceMachine, sample_resource_ops

profiles = st.builds(
    OperationProfile,
    per_type_commutative=st.dictionaries(
        st.text(min_size=1, max_size=8), st.booleans(), max_size=8
    ),
    cross_type_commutative=st.booleans(),
    idempotent_via_uniquifier=st.booleans(),
    numeric_types=st.lists(st.text(min_size=1, max_size=8), max_size=4),
)


@given(profiles)
@settings(max_examples=200)
def test_every_type_maps_to_exactly_one_class(profile):
    classes = profile.op_classes()
    assert set(classes) == set(profile.per_type_commutative)
    for op_type in profile.per_type_commutative:
        assert classes[op_type] in (OP_WEAK, OP_STRONG)
        assert profile.op_class(op_type) == classes[op_type]


@given(profiles)
@settings(max_examples=200)
def test_class_follows_the_measured_boolean(profile):
    for op_type, commutative in profile.per_type_commutative.items():
        expected = OP_WEAK if commutative else OP_STRONG
        assert profile.op_class(op_type) == expected


@given(profiles, st.text(min_size=1, max_size=8))
@settings(max_examples=200)
def test_unmeasured_types_default_to_strong(profile, op_type):
    if op_type not in profile.per_type_commutative:
        assert profile.op_class(op_type) == OP_STRONG


@given(profiles, st.randoms(use_true_random=False))
@settings(max_examples=200)
def test_classification_is_stable_under_field_reordering(profile, rng):
    """Rebuilding the profile with its dict fields in a different
    insertion order changes no answer."""
    items = list(profile.per_type_commutative.items())
    rng.shuffle(items)
    numeric = list(profile.numeric_types)
    rng.shuffle(numeric)
    shuffled = OperationProfile(
        per_type_commutative=dict(items),
        cross_type_commutative=profile.cross_type_commutative,
        idempotent_via_uniquifier=profile.idempotent_via_uniquifier,
        numeric_types=numeric,
    )
    assert shuffled.op_classes() == profile.op_classes()
    assert list(shuffled.op_classes()) == sorted(profile.per_type_commutative)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_measured_classification_ignores_sample_order(seed):
    """The end-to-end form ``repro.txn`` relies on: permuting the sample
    workload never changes which types earn the weak fast path."""
    machine = ResourceMachine({"seats": 3})
    baseline = classify_operation_space(
        machine.registry(), sample_resource_ops()
    ).op_classes()
    shuffled_ops = list(sample_resource_ops())
    random.Random(seed).shuffle(shuffled_ops)
    shuffled = classify_operation_space(
        machine.registry(), shuffled_ops
    ).op_classes()
    assert shuffled == baseline
