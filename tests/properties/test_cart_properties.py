"""Property-based: the op-centric cart is partition-oblivious — however
you split the operations into sibling blobs, merging recovers exactly the
ground-truth cart."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cart import CartOp, OpCartStrategy, materialize

cart_ops = st.builds(
    CartOp,
    kind=st.sampled_from(["ADD", "CHANGE", "DELETE"]),
    item=st.sampled_from(["book", "pen", "ink"]),
    quantity=st.integers(min_value=0, max_value=5),
    uniquifier=st.uuids().map(str),
    time=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


@given(st.lists(cart_ops, max_size=12), st.lists(st.booleans(), max_size=12))
@settings(max_examples=80)
def test_any_sibling_split_merges_to_ground_truth(ops, sides):
    strategy = OpCartStrategy()
    left, right = strategy.empty(), strategy.empty()
    for index, op in enumerate(ops):
        goes_left = sides[index] if index < len(sides) else True
        if goes_left:
            left = strategy.apply(left, op)
        else:
            right = strategy.apply(right, op)
    merged = strategy.merge([left, right])
    assert strategy.view(merged) == materialize(ops)


@given(st.lists(cart_ops, max_size=10))
@settings(max_examples=60)
def test_merge_idempotent_and_duplicate_safe(ops):
    strategy = OpCartStrategy()
    blob = strategy.empty()
    for op in ops:
        blob = strategy.apply(blob, op)
        blob = strategy.apply(blob, op)  # duplicate delivery
    merged = strategy.merge([blob, blob, blob])
    assert strategy.view(merged) == materialize(ops)


@given(st.lists(cart_ops, max_size=10))
@settings(max_examples=60)
def test_materialize_never_negative(ops):
    cart = materialize(ops)
    assert all(quantity > 0 for quantity in cart.values())


@given(st.lists(cart_ops, max_size=10), st.randoms())
@settings(max_examples=60)
def test_materialize_input_order_independent(ops, rng):
    shuffled = list(ops)
    rng.shuffle(shuffled)
    assert materialize(ops) == materialize(shuffled)
