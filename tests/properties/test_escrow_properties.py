"""Property-based: escrow never breaches its bounds under any schedule of
reserves, commits, and aborts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EscrowAccount
from repro.sim import Simulator

actions = st.lists(
    st.tuples(
        st.sampled_from(["reserve", "commit", "abort"]),
        st.integers(min_value=0, max_value=5),  # txn slot
        st.floats(min_value=-40.0, max_value=40.0, allow_nan=False),
    ),
    max_size=30,
)


@given(actions)
@settings(max_examples=80)
def test_bounds_never_breached(schedule):
    """Drive an account with arbitrary try_reserve/commit/abort sequences:
    the committed value must stay in [0, 200] at every step, and so must
    the worst-case envelope."""
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0, minimum=0.0, maximum=200.0)
    live = set()
    for kind, slot, delta in schedule:
        txn = f"t{slot}"
        if kind == "reserve":
            if account.try_reserve(txn, delta):
                live.add(txn)
        elif kind == "commit" and txn in live:
            account.commit(txn)
            live.discard(txn)
        elif kind == "abort" and txn in live:
            account.abort(txn)
            live.discard(txn)
        assert 0.0 <= account.value <= 200.0
        assert account.worst_case_low >= 0.0 - 1e-9
        assert account.worst_case_high <= 200.0 + 1e-9


@given(actions)
@settings(max_examples=60)
def test_abort_all_restores_initial(schedule):
    """If every reservation is aborted, the value is untouched —
    operation logging means rollback is exact."""
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0, minimum=0.0, maximum=200.0)
    live = set()
    for kind, slot, delta in schedule:
        if kind == "reserve" and account.try_reserve(f"t{slot}", delta):
            live.add(f"t{slot}")
    for txn in live:
        account.abort(txn)
    assert account.value == 100.0
    assert account.pending_txns == 0


@given(actions)
@settings(max_examples=60)
def test_value_equals_initial_plus_committed_deltas(schedule):
    sim = Simulator()
    account = EscrowAccount(sim, initial=100.0, minimum=0.0, maximum=500.0)
    pending = {}
    committed_sum = 0.0
    for kind, slot, delta in schedule:
        txn = f"t{slot}"
        if kind == "reserve":
            if account.try_reserve(txn, delta):
                pending.setdefault(txn, []).append(delta)
        elif kind == "commit" and txn in pending:
            account.commit(txn)
            committed_sum += sum(pending.pop(txn))
        elif kind == "abort" and txn in pending:
            account.abort(txn)
            pending.pop(txn)
    assert abs(account.value - (100.0 + committed_sum)) < 1e-9
