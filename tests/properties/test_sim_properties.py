"""Property-based: the kernel executes callbacks in non-decreasing time
order with FIFO tie-breaking, and percentiles match numpy."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.metrics import Histogram


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), max_size=50))
@settings(max_examples=60)
def test_execution_times_non_decreasing(delays):
    sim = Simulator()
    executed = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: executed.append(sim.now))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30))
@settings(max_examples=50)
def test_same_time_fifo(tags):
    """Everything scheduled for the same instant runs in insertion order."""
    sim = Simulator()
    order = []
    for tag in tags:
        sim.schedule(5.0, order.append, tag)
    sim.run()
    assert order == tags


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
             min_size=1, max_size=100),
    st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=80)
def test_percentile_matches_numpy(values, q):
    hist = Histogram("h")
    for value in values:
        hist.observe(value)
    ours = hist.percentile(q)
    theirs = float(np.percentile(np.array(values), q))
    assert abs(ours - theirs) < 1e-6 * max(1.0, abs(theirs))


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=8))
@settings(max_examples=40)
def test_rng_streams_reproducible(seed, name):
    from repro.sim import RngRegistry

    first = [RngRegistry(seed).stream(name).random() for _ in range(3)]
    second = [RngRegistry(seed).stream(name).random() for _ in range(3)]
    assert first == second
