"""Property-based: OpSet merge is a join-semilattice (ACID 2.0 knowledge),
and commutative op spaces fold order-independently."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OpSet, Operation, TypeRegistry, check_acid2


def _apply_add(state, op):
    new = dict(state)
    key = op.args["key"]
    new[key] = new.get(key, 0) + op.args["amount"]
    return new


def make_registry():
    registry = TypeRegistry(initial_state=dict)
    registry.register("ADD", _apply_add)
    return registry


operations = st.builds(
    Operation,
    op_type=st.just("ADD"),
    args=st.fixed_dictionaries(
        {"key": st.sampled_from(["a", "b", "c"]),
         "amount": st.integers(min_value=-50, max_value=50)}
    ),
    uniquifier=st.text(alphabet="xyz0123456789", min_size=1, max_size=6),
    ingress_time=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
op_lists = st.lists(operations, max_size=12)
# The uniquifier contract (§5.4): one uniquifier, one piece of work. Tests
# that compare folded *state* need payload-consistent identities, so they
# draw lists unique by uniquifier; knowledge-only tests tolerate collisions.
distinct_op_lists = st.lists(operations, unique_by=lambda op: op.uniquifier, max_size=12)


@given(op_lists, op_lists)
def test_union_commutative(ops_a, ops_b):
    a, b = OpSet(ops_a), OpSet(ops_b)
    assert a.union(b).uniquifiers() == b.union(a).uniquifiers()


@given(op_lists, op_lists, op_lists)
@settings(max_examples=50)
def test_union_associative(ops_a, ops_b, ops_c):
    a, b, c = OpSet(ops_a), OpSet(ops_b), OpSet(ops_c)
    left = a.union(b).union(c)
    right = a.union(b.union(c))
    assert left.uniquifiers() == right.uniquifiers()


@given(op_lists)
def test_union_idempotent(ops):
    a = OpSet(ops)
    assert a.union(a).uniquifiers() == a.uniquifiers()


@given(op_lists, op_lists)
def test_merge_grows_monotonically(ops_a, ops_b):
    a, b = OpSet(ops_a), OpSet(ops_b)
    before = a.uniquifiers()
    a.merge(b)
    assert before <= a.uniquifiers()


@given(distinct_op_lists)
@settings(max_examples=50)
def test_same_knowledge_same_canonical_state(ops):
    registry = make_registry()
    forward = OpSet(ops)
    backward = OpSet(reversed(ops))
    assert forward.uniquifiers() == backward.uniquifiers()
    assert forward.canonical_fold(registry) == backward.canonical_fold(registry)


@given(distinct_op_lists)
@settings(max_examples=50)
def test_commutative_space_arrival_fold_matches_canonical(ops):
    """For a commutative op space, arrival order is irrelevant even
    without canonicalization."""
    registry = make_registry()
    opset = OpSet(ops)
    assert opset.fold(registry) == opset.canonical_fold(registry)


@given(st.lists(operations, unique_by=lambda op: op.uniquifier, max_size=5))
@settings(max_examples=40)
def test_check_acid2_passes_for_counter_space(ops):
    registry = make_registry()
    report = check_acid2(registry, ops, max_permutations=24)
    assert report.ok, report.failures


@given(op_lists, op_lists)
@settings(max_examples=50)
def test_missing_from_partitions_the_union(ops_a, ops_b):
    a, b = OpSet(ops_a), OpSet(ops_b)
    missing = {op.uniquifier for op in a.missing_from(b)}
    assert missing == a.uniquifiers() - b.uniquifiers()
