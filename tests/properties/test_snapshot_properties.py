"""Property-based: snapshot + tail recovery equals straight-line replay
under arbitrary write/commit/checkpoint interleavings and crash points."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.storage import (
    Disk,
    SnapshotStore,
    WriteAheadLog,
    apply_txn_record,
    recover,
)

# An op sequence interleaves transaction records with checkpoint points.
# Small txn-id range on purpose: commits land on txns with zero, one, or
# several staged writes, commits repeat (idempotence), and checkpoints
# fall between a txn's WRITE and its COMMIT (the split-cut case).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 5),
                  st.integers(0, 7), st.integers(0, 99)),
        st.tuples(st.just("commit"), st.integers(0, 5)),
        st.tuples(st.just("snap")),
    ),
    min_size=1,
    max_size=30,
)


def run_story(schedule, max_chain=3):
    """Drive a WAL + snapshot store through ``schedule``, then recover.

    Returns everything a property needs: the live (never-crashed) replica
    view, the recovery result, and the covered LSN after each install.
    """
    sim = Simulator(seed=3)
    wal = WriteAheadLog(sim, Disk(sim, name="log"), name="log")
    store = SnapshotStore(
        sim, Disk(sim, name="snapdisk"), name="snap", max_chain=max_chain
    )
    live = {"state": {}, "staged": {}, "applied": set()}
    covered_lsns = []

    def story():
        for index, op in enumerate(schedule):
            if op[0] == "write":
                _, txn_idx, key, value = op
                txn = f"t{txn_idx}"
                wal.append("WRITE", txn_id=txn, key=key, value=value)
                yield from wal.flush()
                apply_txn_record(
                    live["state"], live["staged"], live["applied"],
                    "WRITE", txn, {"key": key, "value": value},
                )
            elif op[0] == "commit":
                txn = f"t{op[1]}"
                wal.append("COMMIT", txn_id=txn)
                yield from wal.flush()
                apply_txn_record(
                    live["state"], live["staged"], live["applied"],
                    "COMMIT", txn, {},
                )
            else:
                meta = {
                    "staged": {t: dict(w) for t, w in live["staged"].items()},
                    "applied_txns": sorted(live["applied"]),
                }
                yield from store.install(
                    dict(live["state"]), wal.durable_lsn, meta
                )
                covered_lsns.append(store.latest_lsn)
        result = yield from recover(store, wal)
        return result

    result = sim.run_process(story())
    return sim, wal, store, live, result, covered_lsns


def straight_line_replay(wal):
    """Replay the whole durable log from scratch — the oracle."""
    state, staged, applied = {}, {}, set()
    for record in wal.records_between(0, wal.durable_lsn):
        apply_txn_record(
            state, staged, applied, record.kind, record.txn_id,
            {"key": record.payload.get("key"),
             "value": record.payload.get("value")},
        )
    return state, staged, applied


@given(ops)
@settings(max_examples=200, deadline=None)
def test_recover_equals_straight_line_replay(schedule):
    """Whatever the checkpoint placement — including cuts that split a
    txn between its WRITE and COMMIT — snapshot + tail recovery lands on
    exactly the state a from-scratch replay of the full log produces."""
    _sim, wal, _store, live, result, _lsns = run_story(schedule)
    state, staged, applied = straight_line_replay(wal)
    assert result.state == state
    assert result.staged == staged
    assert result.applied_txns == applied
    # ... which is also the live replica's view: the crash lost nothing.
    assert result.state == live["state"]
    assert result.recovered_lsn == wal.durable_lsn


@given(ops)
@settings(max_examples=150, deadline=None)
def test_snapshot_lsns_are_monotone(schedule):
    """Each installed snapshot covers at least as much as its predecessor,
    and the chain's covered LSN never exceeds the durable log."""
    _sim, wal, store, _live, _result, covered_lsns = run_story(schedule)
    for earlier, later in zip(covered_lsns, covered_lsns[1:]):
        assert later >= earlier
    assert store.latest_lsn <= wal.durable_lsn
    if covered_lsns:
        assert store.latest_lsn == covered_lsns[-1]


@given(ops)
@settings(max_examples=150, deadline=None)
def test_recovery_is_idempotent(schedule):
    """Recovering twice returns the same answer: recovery reads durable
    state and mutates none of it."""
    sim, wal, store, _live, first, _lsns = run_story(schedule)
    second = sim.run_process(recover(store, wal))
    assert second.state == first.state
    assert second.staged == first.staged
    assert second.applied_txns == first.applied_txns
    assert second.recovered_lsn == first.recovered_lsn
    # Checkpointing the recovered state and recovering once more is also
    # a fixed point: recovery-of-recovery changes nothing.
    def again():
        yield from store.install(
            dict(first.state), first.recovered_lsn,
            {"staged": {t: dict(w) for t, w in first.staged.items()},
             "applied_txns": sorted(first.applied_txns)},
        )
        return (yield from recover(store, wal))
    third = sim.run_process(again())
    assert third.state == first.state
    assert third.staged == first.staged
    assert third.applied_txns == first.applied_txns
