"""Stateful hypothesis: the fungible pool conserves units under any
interleaving of allocations, releases, and replica reconciliations."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.resources import FungiblePool

CAPACITY = 6
UNIQS = [f"order-{i}" for i in range(10)]


class FungibleMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.east = FungiblePool("rooms", CAPACITY)
        self.west = FungiblePool("rooms", CAPACITY)

    @rule(pool_name=st.sampled_from(["east", "west"]), uniq=st.sampled_from(UNIQS))
    def allocate(self, pool_name, uniq):
        pool = getattr(self, pool_name)
        before = pool.holder_of(uniq)
        unit = pool.allocate(uniq)
        if before is not None:
            assert unit == before  # idempotent grant

    @rule(pool_name=st.sampled_from(["east", "west"]), uniq=st.sampled_from(UNIQS))
    def release(self, pool_name, uniq):
        getattr(self, pool_name).release(uniq)

    @rule()
    def reconcile(self):
        self.east.reconcile_with(self.west)

    @invariant()
    def units_conserved_per_pool(self):
        for pool in (self.east, self.west):
            assert pool.free_count + pool.granted_count == CAPACITY

    @invariant()
    def no_double_granted_unit_within_a_pool(self):
        for pool in (self.east, self.west):
            units = list(pool._grants.values())
            assert len(units) == len(set(units))

    @invariant()
    def reconciled_uniquifiers_disjoint_after_reconcile(self):
        # Not an always-invariant (pre-reconcile overlap is the §7.5
        # scenario); checked opportunistically when grants are empty on
        # one side.
        if not self.east.granted_count:
            assert set(self.east._grants) == set()


TestFungibleMachine = FungibleMachine.TestCase
TestFungibleMachine.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)


def test_reconcile_always_clears_overlap():
    """Directed: after reconcile, no uniquifier is granted on both sides."""
    east = FungiblePool("rooms", 4)
    west = FungiblePool("rooms", 4)
    for uniq in ("a", "b", "c"):
        east.allocate(uniq)
        west.allocate(uniq)
    east.reconcile_with(west)
    overlap = set(east._grants) & set(west._grants)
    assert overlap == set()
    assert east.returned_redundant == 3
